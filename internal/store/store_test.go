package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
)

func testKey(seed uint64) CampaignKey {
	return CampaignKey{
		Netlist: HashBytes([]byte("module m\nend\n")),
		Engine:  "scone-campaign/1-lanes64",
		Key:     [2]uint64{0x0123456789ABCDEF, 0x8421},
		Seed:    seed,
		Faults: []FaultPoint{
			{Net: 1723, Model: 0, FromCycle: 31, ToCycle: 31},
			{Net: 42, Model: 2, FromCycle: -1, ToCycle: -1, Lanes: 0xF0F0},
		},
	}
}

func batchCounts(runs, det int) Counts {
	return Counts{Total: runs, Ineffective: runs - det, Detected: det}
}

func persistentKey(seed uint64) CampaignKey {
	k := testKey(seed)
	k.Faults = nil
	k.Persistent = &PersistentPoint{Entry: 11, Mask: 0x4}
	return k
}

func TestCampaignKeyRoundTrip(t *testing.T) {
	keys := []CampaignKey{
		testKey(7),
		{Engine: "e"},
		{Netlist: HashBytes(nil), Engine: "", Seed: ^uint64(0), Faults: []FaultPoint{{}}},
	}
	for i, k := range keys {
		got, err := DecodeCampaignKey(k.Encode())
		if err != nil {
			t.Fatalf("key %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(normalize(k), normalize(got)) {
			t.Fatalf("key %d: round-trip mismatch:\n in: %+v\nout: %+v", i, k, got)
		}
		if got.Digest() != k.Digest() {
			t.Fatalf("key %d: digest changed across round-trip", i)
		}
	}
}

// normalize maps nil and empty fault slices together (the codec cannot and
// need not distinguish them).
func normalize(k CampaignKey) CampaignKey {
	if len(k.Faults) == 0 {
		k.Faults = nil
	}
	return k
}

func TestCampaignKeyDigestSensitivity(t *testing.T) {
	base := testKey(7)
	mutations := map[string]func(*CampaignKey){
		"netlist": func(k *CampaignKey) { k.Netlist[0] ^= 1 },
		"engine":  func(k *CampaignKey) { k.Engine = "scone-campaign/2" },
		"key":     func(k *CampaignKey) { k.Key[1]++ },
		"seed":    func(k *CampaignKey) { k.Seed++ },
		"fault":   func(k *CampaignKey) { k.Faults[0].Net++ },
		"model":   func(k *CampaignKey) { k.Faults[1].Model = 1 },
		"cycle":   func(k *CampaignKey) { k.Faults[0].ToCycle++ },
	}
	for name, mutate := range mutations {
		k := testKey(7)
		k.Faults = append([]FaultPoint(nil), base.Faults...)
		mutate(&k)
		if k.Digest() == base.Digest() {
			t.Errorf("mutating %s did not change the digest", name)
		}
	}
}

func TestCampaignKeyDecodeRejectsTrailing(t *testing.T) {
	b := append(testKey(1).Encode(), 0)
	if _, err := DecodeCampaignKey(b); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, err := DecodeCampaignKey(nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestStorePutGetPersist(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	addr := testKey(9).Digest()
	k0 := BatchKey{Campaign: addr, Batch: 0, Runs: 64}
	k5 := BatchKey{Campaign: addr, Batch: 5, Runs: 32} // final partial batch
	if _, ok := s.GetBatch(k0); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.PutBatch(k0, batchCounts(64, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutBatch(k5, batchCounts(32, 1)); err != nil {
		t.Fatal(err)
	}
	rec := RunRecord{ID: "j000001", Kind: "campaign", State: "running",
		Campaign: addr.String(), Runs: 352, Batches: 6, Submitted: time.Now().UTC()}
	if err := s.PutRun(rec); err != nil {
		t.Fatal(err)
	}
	rec.State = "done"
	rec.SimulatedBatches = 6
	if err := s.PutRun(rec); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, ok := s2.GetBatch(k0); !ok || got != batchCounts(64, 3) {
		t.Fatalf("batch 0 after reopen: %+v ok=%v", got, ok)
	}
	if got, ok := s2.GetBatch(k5); !ok || got != batchCounts(32, 1) {
		t.Fatalf("batch 5 after reopen: %+v ok=%v", got, ok)
	}
	if s2.BatchCount() != 2 {
		t.Fatalf("batch count = %d, want 2", s2.BatchCount())
	}
	runs := s2.Runs()
	if len(runs) != 1 || runs[0].State != "done" || runs[0].SimulatedBatches != 6 {
		t.Fatalf("run records after reopen: %+v", runs)
	}
	if got, ok := s2.Run("j000001"); !ok || got.Campaign != addr.String() {
		t.Fatalf("Run lookup: %+v ok=%v", got, ok)
	}
}

func TestStoreRejectsConflictingPut(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "r.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k := BatchKey{Campaign: testKey(1).Digest(), Batch: 0, Runs: 64}
	if err := s.PutBatch(k, batchCounts(64, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutBatch(k, batchCounts(64, 2)); err != nil {
		t.Fatalf("idempotent re-put: %v", err)
	}
	if err := s.PutBatch(k, batchCounts(64, 3)); err == nil {
		t.Fatal("conflicting counts accepted")
	}
	if got, _ := s.GetBatch(k); got != batchCounts(64, 2) {
		t.Fatalf("original record clobbered: %+v", got)
	}
	// Internally inconsistent counts are rejected before touching the log.
	if err := s.PutBatch(BatchKey{Campaign: k.Campaign, Batch: 1, Runs: 64},
		Counts{Total: 64, Detected: 70}); err == nil {
		t.Fatal("inconsistent counts accepted")
	}
}

func TestStoreRecoversFromTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	addr := testKey(3).Digest()
	for b := 0; b < 4; b++ {
		if err := s.PutBatch(BatchKey{Campaign: addr, Batch: b, Runs: 64}, batchCounts(64, b)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record in half, as a crash mid-append would.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if s2.BatchCount() != 3 {
		t.Fatalf("after torn tail: %d batches, want 3", s2.BatchCount())
	}
	if s2.RecoveredBytes() == 0 {
		t.Fatal("recovery not reported")
	}
	// The store keeps working: the lost batch can simply be re-put.
	if err := s2.PutBatch(BatchKey{Campaign: addr, Batch: 3, Runs: 64}, batchCounts(64, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.BatchCount() != 4 || s3.RecoveredBytes() != 0 {
		t.Fatalf("after re-put reopen: %d batches, recovered %d", s3.BatchCount(), s3.RecoveredBytes())
	}
}

func TestStoreRecoversFromMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	addr := testKey(4).Digest()
	for b := 0; b < 8; b++ {
		if err := s.PutBatch(BatchKey{Campaign: addr, Batch: b, Runs: 64}, batchCounts(64, b)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte in the middle of the file: everything from the damaged
	// record on is dropped, everything before it survives.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	n := s2.BatchCount()
	if n >= 8 || s2.RecoveredBytes() == 0 {
		t.Fatalf("corruption survived: %d batches, recovered %d", n, s2.RecoveredBytes())
	}
	for b := 0; b < n; b++ {
		if got, ok := s2.GetBatch(BatchKey{Campaign: addr, Batch: b, Runs: 64}); !ok || got != batchCounts(64, b) {
			t.Fatalf("surviving prefix batch %d: %+v ok=%v", b, got, ok)
		}
	}
}

func TestStoreMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := Open(filepath.Join(t.TempDir(), "r.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.EnableObservability(reg)
	k := BatchKey{Campaign: testKey(2).Digest(), Batch: 0, Runs: 64}
	s.GetBatch(k)
	if err := s.PutBatch(k, batchCounts(64, 0)); err != nil {
		t.Fatal(err)
	}
	s.GetBatch(k)
	if s.hits.Value() != 1 || s.misses.Value() != 1 || s.puts.Value() != 1 {
		t.Fatalf("hits=%d misses=%d puts=%d, want 1/1/1",
			s.hits.Value(), s.misses.Value(), s.puts.Value())
	}
}

func TestNilStoreIsNoop(t *testing.T) {
	var s *Store
	if _, ok := s.GetBatch(BatchKey{}); ok {
		t.Fatal("nil store hit")
	}
	if err := s.PutBatch(BatchKey{}, Counts{}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutRun(RunRecord{}); err != nil {
		t.Fatal(err)
	}
	if s.Runs() != nil || s.BatchCount() != 0 || s.RecoveredBytes() != 0 {
		t.Fatal("nil store reported contents")
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s.EnableObservability(obs.NewRegistry())
}

func TestRunRecordJSONRoundTrip(t *testing.T) {
	fin := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	rec := RunRecord{
		ID:      "j000002",
		Kind:    "campaign",
		Request: json.RawMessage(`{"kind":"campaign"}`),
		Runs:    640, Batches: 10, ReplayedBatches: 5, SimulatedBatches: 5,
		State: "done", Finished: &fin,
		Result: &Counts{Total: 640, Ineffective: 600, Detected: 40},
	}
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var got RunRecord
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, got) {
		t.Fatalf("round-trip mismatch:\n in: %+v\nout: %+v", rec, got)
	}
}
