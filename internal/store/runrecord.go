package store

import (
	"encoding/json"
	"time"
)

// RunRecord is the durable provenance of one campaign submission: what was
// asked (the raw request), what it resolved to (design and campaign
// digests, engine version), when it ran, and how the work split between
// replayed and freshly simulated batches. Records are updated by appending
// a superseding record under the same ID; the log therefore doubles as a
// history, while the index exposes the latest state.
//
// Request is kept as raw JSON so the store does not depend on the service's
// wire types; the service layer owns the schema.
type RunRecord struct {
	ID      string          `json:"id"`
	JobID   string          `json:"job_id,omitempty"`
	Kind    string          `json:"kind,omitempty"`
	Request json.RawMessage `json:"request,omitempty"`

	Netlist  string `json:"netlist_digest,omitempty"`
	Campaign string `json:"campaign_digest,omitempty"`
	Engine   string `json:"engine_version,omitempty"`

	Runs    int `json:"runs,omitempty"`
	Batches int `json:"batches,omitempty"`
	// ReplayedBatches and SimulatedBatches split the executed batches by
	// source; their sum can fall short of Batches on an interrupted run.
	ReplayedBatches  int `json:"replayed_batches"`
	SimulatedBatches int `json:"simulated_batches"`

	// State mirrors the job lifecycle: running, done, failed, canceled.
	State string `json:"state"`
	Error string `json:"error,omitempty"`

	Submitted time.Time  `json:"submitted"`
	Started   time.Time  `json:"started"`
	Finished  *time.Time `json:"finished,omitempty"`

	// Result is the final merged tally, present once the run completed.
	Result *Counts `json:"result,omitempty"`
}
