package store

import "testing"

// TestCampaignKeyDigestCompat pins the content address of a representative
// transient-only campaign key to the digest the pre-multifault encoding
// produced (computed with the encoding as of engine v1). The persistent-fault
// and corrected-count extensions are optional tails, so every digest minted
// before they existed must keep addressing the same stored batches; if this
// digest moves, the whole result store silently goes cold.
func TestCampaignKeyDigestCompat(t *testing.T) {
	const golden = "7ca69781fe8f25c89baca8fd532f69526a88baf0b775ba4e1d9b428f020b7fd2"
	k := testKey(7)
	if got := k.Digest().String(); got != golden {
		t.Fatalf("transient-only CampaignKey digest drifted:\n got %s\nwant %s\npre-existing store entries would be orphaned", got, golden)
	}

	// The tail must actually participate in the address when present.
	p := persistentKey(7)
	if p.Digest() == k.Digest() {
		t.Fatal("persistent tail did not change the digest")
	}
	p2 := persistentKey(7)
	p2.Persistent.Mask ^= 1
	if p2.Digest() == p.Digest() {
		t.Fatal("persistent mask change did not change the digest")
	}

	// Round-trip with the tail present.
	got, err := DecodeCampaignKey(p.Encode())
	if err != nil {
		t.Fatalf("decode persistent key: %v", err)
	}
	if got.Persistent == nil || *got.Persistent != *p.Persistent {
		t.Fatalf("persistent tail did not round-trip: %+v", got.Persistent)
	}

	// Batch records: the corrected count is an optional tail, appended only
	// when non-zero, so v1 records re-encode byte-identically...
	bk := BatchKey{Campaign: k.Digest(), Batch: 2, Runs: 64}
	v1 := encodeBatch(bk, Counts{Total: 64, Ineffective: 60, Detected: 4})
	k2, c2, err := decodeBatch(v1)
	if err != nil {
		t.Fatalf("decode v1 batch record: %v", err)
	}
	if string(encodeBatch(k2, c2)) != string(v1) {
		t.Fatal("v1 batch record did not re-encode byte-identically")
	}
	// ...while records carrying corrections round-trip with the count intact.
	cc := Counts{Total: 64, Ineffective: 50, Detected: 8, Effective: 1, Corrected: 5}
	_, got2, err := decodeBatch(encodeBatch(bk, cc))
	if err != nil {
		t.Fatalf("decode corrected batch record: %v", err)
	}
	if got2 != cc {
		t.Fatalf("corrected counts did not round-trip: %+v", got2)
	}
}
