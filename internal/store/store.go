// Package store is the embedded, dependency-free result store behind
// sconed's incremental-replay path. It persists two record kinds in one
// append-only log:
//
//   - batch records: the outcome tally of one completed campaign batch,
//     keyed by content address — (netlist digest, engine version, cipher
//     key, seed, resolved faults, batch index, runs in batch). Because
//     campaign batch b derives all randomness from (seed, b), a stored
//     batch is exactly the batch any future submission of the same
//     campaign would simulate, so lookups can replace simulation without
//     changing a single bit of the merged result.
//
//   - run records: one JSON document per campaign submission carrying full
//     provenance (request, digests, timestamps, replay/simulation split,
//     final counts). The last record per ID wins on reload, so a run is
//     updated by appending.
//
// Crash safety follows the CRC-framed incremental database idiom: every
// record is length-prefixed and CRC32-checked, writes are append-only, and
// Open truncates the log at the first bad frame. A torn tail or corrupted
// region costs only cache entries — the store stays usable and the lost
// batches are simply re-simulated.
package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/obs"
)

// Record framing: one type byte, little-endian payload length, little-endian
// CRC32 (IEEE) of the payload, then the payload itself.
const (
	recBatch = 'B'
	recRun   = 'R'

	frameHeaderLen = 1 + 4 + 4

	// maxPayload bounds a frame so a corrupt length can neither drive a
	// huge allocation nor skip the scanner past gigabytes of log.
	maxPayload = 8 << 20
)

// Store is a content-addressed campaign result store backed by one
// append-only log file. All methods are safe for concurrent use, and every
// method is a no-op (miss, empty) on a nil receiver, so a service without a
// state dir runs storeless through the same code path.
type Store struct {
	mu   sync.Mutex
	f    *os.File
	path string
	size int64 // append offset == bytes of valid log

	batches  map[BatchKey]Counts
	runs     map[string]RunRecord
	runOrder []string

	recovered int64 // bytes truncated by corruption recovery at Open

	hits    *obs.Counter
	misses  *obs.Counter
	puts    *obs.Counter
	putErrs *obs.Counter
}

// Open loads (or creates) the log at path, replaying every valid record into
// the in-memory index. On encountering a corrupt or torn frame it truncates
// the file there and keeps everything before it: recovery can lose cache
// entries, never the store.
func Open(path string) (*Store, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		f:       f,
		path:    path,
		batches: make(map[BatchKey]Counts),
		runs:    make(map[string]RunRecord),
	}
	if err := s.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// replay scans the log from the start, indexing valid records and truncating
// at the first bad frame.
func (s *Store) replay() error {
	fi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	total := fi.Size()
	var off int64
	hdr := make([]byte, frameHeaderLen)
	var payload []byte
	for off < total {
		good := s.scanRecord(off, total, hdr, &payload)
		if !good {
			break
		}
		off += frameHeaderLen + int64(binary.LittleEndian.Uint32(hdr[1:5]))
	}
	if off < total {
		s.recovered = total - off
		if err := s.f.Truncate(off); err != nil {
			return fmt.Errorf("store: truncate corrupt tail: %w", err)
		}
	}
	if _, err := s.f.Seek(off, io.SeekStart); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.size = off
	return nil
}

// scanRecord validates and indexes the frame at off. It reports false on any
// malformation — short header, oversized or truncated payload, CRC mismatch,
// undecodable payload, unknown record type — which replay treats uniformly
// as the end of the valid log.
func (s *Store) scanRecord(off, total int64, hdr []byte, payload *[]byte) bool {
	if total-off < frameHeaderLen {
		return false
	}
	if _, err := s.f.ReadAt(hdr, off); err != nil {
		return false
	}
	typ := hdr[0]
	if typ != recBatch && typ != recRun {
		return false
	}
	n := int64(binary.LittleEndian.Uint32(hdr[1:5]))
	if n > maxPayload || total-off-frameHeaderLen < n {
		return false
	}
	if int64(cap(*payload)) < n {
		*payload = make([]byte, n)
	}
	p := (*payload)[:n]
	if _, err := s.f.ReadAt(p, off+frameHeaderLen); err != nil {
		return false
	}
	if crc32.ChecksumIEEE(p) != binary.LittleEndian.Uint32(hdr[5:9]) {
		return false
	}
	switch typ {
	case recBatch:
		k, c, err := decodeBatch(p)
		if err != nil {
			return false
		}
		s.batches[k] = c
	case recRun:
		var rec RunRecord
		if err := json.Unmarshal(p, &rec); err != nil || rec.ID == "" {
			return false
		}
		if _, seen := s.runs[rec.ID]; !seen {
			s.runOrder = append(s.runOrder, rec.ID)
		}
		s.runs[rec.ID] = rec
	}
	return true
}

// append frames and writes one record. Callers hold s.mu.
func (s *Store) append(typ byte, payload []byte) error {
	if s.f == nil {
		return fmt.Errorf("store: closed")
	}
	if len(payload) > maxPayload {
		return fmt.Errorf("store: record payload %d exceeds limit", len(payload))
	}
	buf := make([]byte, frameHeaderLen+len(payload))
	buf[0] = typ
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[5:9], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeaderLen:], payload)
	n, err := s.f.WriteAt(buf, s.size)
	if err != nil {
		// A partial frame is exactly what replay recovers from; leave the
		// append offset where it was so a retry overwrites the torn tail.
		return fmt.Errorf("store: append: %w", err)
	}
	s.size += int64(n)
	return nil
}

// EnableObservability registers the store's instruments on reg. Call once,
// right after Open; a nil registry (or never calling this) leaves the
// instruments as free no-ops.
func (s *Store) EnableObservability(reg *obs.Registry) {
	if s == nil || reg == nil {
		return
	}
	s.hits = reg.NewCounter("scone_store_hits_total", "Campaign batches served from the result store instead of simulating")
	s.misses = reg.NewCounter("scone_store_misses_total", "Batch lookups that found no stored result")
	s.puts = reg.NewCounter("scone_store_batch_puts_total", "Batch results appended to the log")
	s.putErrs = reg.NewCounter("scone_store_put_errors_total", "Failed or conflicting store appends")
	reg.NewGaugeFunc("scone_store_batches_count", "Distinct batch results indexed", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.batches))
	})
	reg.NewGaugeFunc("scone_store_runs_count", "Campaign run records indexed", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.runs))
	})
	reg.NewGaugeFunc("scone_store_log_bytes", "Bytes of valid result log on disk", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.size
	})
	reg.NewGaugeFunc("scone_store_recovered_bytes", "Corrupt log bytes truncated at the last Open", func() int64 {
		return s.recovered
	})
}

// GetBatch looks one batch up, counting a hit or miss.
func (s *Store) GetBatch(k BatchKey) (Counts, bool) {
	if s == nil {
		return Counts{}, false
	}
	s.mu.Lock()
	c, ok := s.batches[k]
	s.mu.Unlock()
	if ok {
		s.hits.Inc()
	} else {
		s.misses.Inc()
	}
	return c, ok
}

// PeekBatch is GetBatch without the hit/miss instruments: read-only query
// surfaces (GET /v1/results) use it, so the cache metrics keep measuring
// only the replay decision inside job execution.
func (s *Store) PeekBatch(k BatchKey) (Counts, bool) {
	if s == nil {
		return Counts{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.batches[k]
	return c, ok
}

// PutBatch stores one completed batch. Storing an already-present key with
// equal counts is a free no-op (concurrent executions of the same campaign
// legitimately race here); unequal counts mean the determinism contract was
// broken somewhere, so the existing record is kept and an error returned.
func (s *Store) PutBatch(k BatchKey, c Counts) error {
	if s == nil {
		return nil
	}
	if c.Total != k.Runs || c.Total != c.Ineffective+c.Detected+c.Effective+c.Corrected {
		s.putErrs.Inc()
		return fmt.Errorf("store: inconsistent counts for batch %d", k.Batch)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.batches[k]; ok {
		if prev == c {
			return nil
		}
		s.putErrs.Inc()
		return fmt.Errorf("store: batch %d of %s already stored with different counts (determinism violation?)",
			k.Batch, k.Campaign)
	}
	if err := s.append(recBatch, encodeBatch(k, c)); err != nil {
		s.putErrs.Inc()
		return err
	}
	s.batches[k] = c
	s.puts.Inc()
	return nil
}

// PutRun appends (or, for an existing ID, supersedes) one run record.
func (s *Store) PutRun(rec RunRecord) error {
	if s == nil {
		return nil
	}
	if rec.ID == "" {
		s.putErrs.Inc()
		return fmt.Errorf("store: run record needs an ID")
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		s.putErrs.Inc()
		return fmt.Errorf("store: run record: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.append(recRun, payload); err != nil {
		s.putErrs.Inc()
		return err
	}
	if _, seen := s.runs[rec.ID]; !seen {
		s.runOrder = append(s.runOrder, rec.ID)
	}
	s.runs[rec.ID] = rec
	return nil
}

// Run returns one run record by ID.
func (s *Store) Run(id string) (RunRecord, bool) {
	if s == nil {
		return RunRecord{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.runs[id]
	return rec, ok
}

// Runs returns every run record in first-seen order.
func (s *Store) Runs() []RunRecord {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RunRecord, 0, len(s.runOrder))
	for _, id := range s.runOrder {
		out = append(out, s.runs[id])
	}
	return out
}

// BatchCount reports the number of distinct batch results indexed.
func (s *Store) BatchCount() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.batches)
}

// RecoveredBytes reports how many corrupt tail bytes the last Open dropped.
func (s *Store) RecoveredBytes() int64 {
	if s == nil {
		return 0
	}
	return s.recovered
}

// Sync flushes the log to stable storage. The service calls this at its
// checkpoint cadence: CRC framing already guarantees consistency across
// crashes, Sync only upgrades recent appends from "likely" to "durable".
func (s *Store) Sync() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	return s.f.Sync()
}

// Close syncs and closes the log. Further use returns errors.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}
