package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzCampaignKeyCodec feeds arbitrary bytes to the key decoder. Anything it
// accepts must re-encode to a decodable, semantically identical key — the
// content address may never depend on which of several byte spellings it was
// decoded from.
func FuzzCampaignKeyCodec(f *testing.F) {
	f.Add(testKey(7).Encode())
	f.Add(CampaignKey{Engine: "e"}.Encode())
	f.Add(persistentKey(7).Encode())
	f.Add([]byte{'K', campaignKeyVersion})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		k, err := DecodeCampaignKey(data)
		if err != nil {
			return
		}
		k2, err := DecodeCampaignKey(k.Encode())
		if err != nil {
			t.Fatalf("re-decode of accepted key failed: %v", err)
		}
		if !reflect.DeepEqual(normalize(k), normalize(k2)) {
			t.Fatalf("key not stable across re-encode:\n in: %+v\nout: %+v", k, k2)
		}
		if k.Digest() != k2.Digest() {
			t.Fatal("digest not stable across re-encode")
		}
	})
}

// FuzzCampaignKeyFields builds keys from arbitrary field values and checks
// the exact round-trip plus digest sensitivity to the seed.
func FuzzCampaignKeyFields(f *testing.F) {
	f.Add([]byte("netlist"), "scone-campaign/1-lanes64", uint64(1), uint64(2), uint64(3),
		uint32(1723), byte(0), int32(31), int32(31), uint64(0))
	f.Add([]byte{}, "", ^uint64(0), uint64(0), ^uint64(0),
		uint32(0), byte(255), int32(-1), int32(-1), ^uint64(0))
	f.Fuzz(func(t *testing.T, netlist []byte, engine string, key0, key1, seed uint64,
		net uint32, model byte, from, to int32, lanes uint64) {
		k := CampaignKey{
			Netlist: HashBytes(netlist),
			Engine:  engine,
			Key:     [2]uint64{key0, key1},
			Seed:    seed,
			Faults:  []FaultPoint{{Net: net, Model: model, FromCycle: from, ToCycle: to, Lanes: lanes}},
		}
		got, err := DecodeCampaignKey(k.Encode())
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(k, got) {
			t.Fatalf("round-trip mismatch:\n in: %+v\nout: %+v", k, got)
		}
		k2 := k
		k2.Seed = seed + 1
		if k2.Digest() == k.Digest() {
			t.Fatal("seed change did not change the digest")
		}
	})
}

// FuzzBatchRecordCodec checks the batch record payload codec the same way.
func FuzzBatchRecordCodec(f *testing.F) {
	f.Add(encodeBatch(BatchKey{Campaign: testKey(1).Digest(), Batch: 3, Runs: 64}, batchCounts(64, 5)))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		k, c, err := decodeBatch(data)
		if err != nil {
			return
		}
		k2, c2, err := decodeBatch(encodeBatch(k, c))
		if err != nil {
			t.Fatalf("re-decode of accepted record failed: %v", err)
		}
		if k != k2 || c != c2 {
			t.Fatalf("record not stable: (%+v,%+v) vs (%+v,%+v)", k, c, k2, c2)
		}
	})
}

// FuzzLogRecovery opens a store over arbitrary file contents. Whatever the
// bytes, Open must succeed — corruption costs cache entries, never the store
// — and the recovered store must accept and persist new records.
func FuzzLogRecovery(f *testing.F) {
	// Seed with a valid two-record log, a torn tail and pure garbage.
	valid := func() []byte {
		dir := f.TempDir()
		path := filepath.Join(dir, "seed.log")
		s, err := Open(path)
		if err != nil {
			f.Fatal(err)
		}
		addr := testKey(11).Digest()
		s.PutBatch(BatchKey{Campaign: addr, Batch: 0, Runs: 64}, batchCounts(64, 1))
		s.PutRun(RunRecord{ID: "j000001", State: "done"})
		s.Close()
		b, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("not a log at all"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(path)
		if err != nil {
			t.Fatalf("Open on arbitrary bytes must recover, got: %v", err)
		}
		k := BatchKey{Campaign: HashBytes(data), Batch: 1, Runs: 64}
		if err := s.PutBatch(k, batchCounts(64, 7)); err != nil {
			t.Fatalf("recovered store rejected a put: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(path)
		if err != nil {
			t.Fatalf("reopen after recovery+put: %v", err)
		}
		defer s2.Close()
		if got, ok := s2.GetBatch(k); !ok || got != batchCounts(64, 7) {
			t.Fatalf("put after recovery did not survive reopen: %+v ok=%v", got, ok)
		}
	})
}
