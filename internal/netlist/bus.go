package netlist

import "fmt"

// Bus is an ordered group of nets; index 0 is the least-significant bit.
type Bus []Net

// Clone returns a copy of the bus.
func (b Bus) Clone() Bus {
	out := make(Bus, len(b))
	copy(out, b)
	return out
}

// Reversed returns the bus with bit order reversed (MSB becomes index 0).
func (b Bus) Reversed() Bus {
	out := make(Bus, len(b))
	for i, n := range b {
		out[len(b)-1-i] = n
	}
	return out
}

// Slice returns bits [lo, hi) as a new bus.
func (b Bus) Slice(lo, hi int) Bus {
	return b[lo:hi].Clone()
}

// Concat returns the concatenation b || rest... with b occupying the
// low-order positions.
func (b Bus) Concat(rest ...Bus) Bus {
	out := b.Clone()
	for _, r := range rest {
		out = append(out, r...)
	}
	return out
}

// Permute applies a bit permutation: output position perm[i] receives input
// bit i (matching bits.Permute64).
func (b Bus) Permute(perm []int) Bus {
	if len(perm) != len(b) {
		panic(fmt.Sprintf("netlist: permutation length %d != bus width %d", len(perm), len(b)))
	}
	out := make(Bus, len(b))
	for i, p := range perm {
		out[p] = b[i]
	}
	return out
}

// Nibbles splits the bus into 4-bit groups, low nibble first. The width must
// be a multiple of four.
func (b Bus) Nibbles() []Bus {
	if len(b)%4 != 0 {
		panic(fmt.Sprintf("netlist: bus width %d not a multiple of 4", len(b)))
	}
	out := make([]Bus, len(b)/4)
	for i := range out {
		out[i] = b.Slice(4*i, 4*i+4)
	}
	return out
}

// Bytes splits the bus into 8-bit groups, low byte first. The width must be
// a multiple of eight.
func (b Bus) Bytes() []Bus {
	if len(b)%8 != 0 {
		panic(fmt.Sprintf("netlist: bus width %d not a multiple of 8", len(b)))
	}
	out := make([]Bus, len(b)/8)
	for i := range out {
		out[i] = b.Slice(8*i, 8*i+8)
	}
	return out
}

// XorBus returns a new bus of pairwise XORs of a and b.
func (m *Module) XorBus(a, b Bus) Bus {
	checkSameWidth("XorBus", a, b)
	out := make(Bus, len(a))
	for i := range a {
		out[i] = m.Xor(a[i], b[i])
	}
	return out
}

// XnorBus returns a new bus of pairwise XNORs of a and b.
func (m *Module) XnorBus(a, b Bus) Bus {
	checkSameWidth("XnorBus", a, b)
	out := make(Bus, len(a))
	for i := range a {
		out[i] = m.Xnor(a[i], b[i])
	}
	return out
}

// NotBus returns a new bus with every bit complemented.
func (m *Module) NotBus(a Bus) Bus {
	out := make(Bus, len(a))
	for i := range a {
		out[i] = m.Not(a[i])
	}
	return out
}

// MuxBus returns sel ? b : a applied bitwise.
func (m *Module) MuxBus(a, b Bus, sel Net) Bus {
	checkSameWidth("MuxBus", a, b)
	out := make(Bus, len(a))
	for i := range a {
		out[i] = m.Mux(a[i], b[i], sel)
	}
	return out
}

// AndBus returns pairwise ANDs of a and b.
func (m *Module) AndBus(a, b Bus) Bus {
	checkSameWidth("AndBus", a, b)
	out := make(Bus, len(a))
	for i := range a {
		out[i] = m.And(a[i], b[i])
	}
	return out
}

// AndWith returns every bit of a ANDed with the single net g.
func (m *Module) AndWith(a Bus, g Net) Bus {
	out := make(Bus, len(a))
	for i := range a {
		out[i] = m.And(a[i], g)
	}
	return out
}

// XorWith returns every bit of a XORed with the single net g (conditional
// bitwise inversion: the domain-conversion primitive of the countermeasure).
func (m *Module) XorWith(a Bus, g Net) Bus {
	out := make(Bus, len(a))
	for i := range a {
		out[i] = m.Xor(a[i], g)
	}
	return out
}

// OrReduce returns the OR of all bits of a using a balanced tree. An empty
// bus reduces to constant 0.
func (m *Module) OrReduce(a Bus) Net {
	return m.reduce(KindOr2, a, func() Net { return m.Const0() })
}

// AndReduce returns the AND of all bits of a using a balanced tree. An empty
// bus reduces to constant 1.
func (m *Module) AndReduce(a Bus) Net {
	return m.reduce(KindAnd2, a, func() Net { return m.Const1() })
}

// XorReduce returns the XOR of all bits of a using a balanced tree. An empty
// bus reduces to constant 0.
func (m *Module) XorReduce(a Bus) Net {
	return m.reduce(KindXor2, a, func() Net { return m.Const0() })
}

func (m *Module) reduce(kind CellKind, a Bus, empty func() Net) Net {
	switch len(a) {
	case 0:
		return empty()
	case 1:
		return a[0]
	}
	work := a.Clone()
	for len(work) > 1 {
		next := make(Bus, 0, (len(work)+1)/2)
		for i := 0; i+1 < len(work); i += 2 {
			next = append(next, m.gate(kind, "red", work[i], work[i+1]))
		}
		if len(work)%2 == 1 {
			next = append(next, work[len(work)-1])
		}
		work = next
	}
	return work[0]
}

// DFFBus registers every bit of d and returns the Q bus.
func (m *Module) DFFBus(d Bus) Bus {
	out := make(Bus, len(d))
	for i := range d {
		out[i] = m.DFF(d[i])
	}
	return out
}

// ConstBus returns a bus of the given width driven with the low bits of
// value (bit 0 = LSB).
func (m *Module) ConstBus(width int, value uint64) Bus {
	out := make(Bus, width)
	for i := range out {
		if (value>>uint(i))&1 == 1 {
			out[i] = m.Const1()
		} else {
			out[i] = m.Const0()
		}
	}
	return out
}

// EqualZero returns a net that is 1 iff all bits of a are 0.
func (m *Module) EqualZero(a Bus) Net {
	return m.Not(m.OrReduce(a))
}

func checkSameWidth(op string, a, b Bus) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("netlist: %s width mismatch %d vs %d", op, len(a), len(b)))
	}
}
