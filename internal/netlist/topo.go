package netlist

import (
	"fmt"
)

// Levelize returns the indices of all combinational cells in a topological
// order: every cell appears after the drivers of all its inputs. DFF outputs
// and primary inputs count as sources. It returns an error if the
// combinational logic contains a cycle.
func (m *Module) Levelize() ([]int, error) {
	order := make([]int, 0, len(m.Cells))
	// state: 0 = unvisited, 1 = in progress, 2 = done
	state := make([]uint8, len(m.Cells))

	var visit func(ci int) error
	visit = func(ci int) error {
		switch state[ci] {
		case 2:
			return nil
		case 1:
			return fmt.Errorf("netlist: combinational cycle through cell %d (%s driving %q)",
				ci, m.Cells[ci].Kind, m.NetName(m.Cells[ci].Out))
		}
		state[ci] = 1
		c := &m.Cells[ci]
		if !c.Kind.IsSequential() {
			for _, in := range c.Inputs() {
				d := m.Driver(in)
				if d >= 0 && !m.Cells[d].Kind.IsSequential() {
					if err := visit(d); err != nil {
						return err
					}
				}
			}
		}
		state[ci] = 2
		if !c.Kind.IsSequential() {
			order = append(order, ci)
		}
		return nil
	}

	// Iterative outer loop with recursive DFS. Netlists here are bounded
	// (tens of thousands of cells) and tree-like, so recursion depth is
	// manageable; LogicDepth below uses the produced order instead.
	for ci := range m.Cells {
		if err := visit(ci); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// LogicDepth returns the maximum number of combinational cells on any
// input-to-output (or register-to-register) path — the unit-delay critical
// path length. It returns an error on combinational cycles.
func (m *Module) LogicDepth() (int, error) {
	order, err := m.Levelize()
	if err != nil {
		return 0, err
	}
	depth := make([]int, m.NumNets()+1)
	max := 0
	for _, ci := range order {
		c := &m.Cells[ci]
		d := 0
		for _, in := range c.Inputs() {
			if depth[in] > d {
				d = depth[in]
			}
		}
		if !c.Kind.IsConst() {
			d++
		}
		depth[c.Out] = d
		if d > max {
			max = d
		}
	}
	return max, nil
}

// FanoutCounts returns, for each net, how many cell inputs it feeds.
// Output-port usage is not counted.
func (m *Module) FanoutCounts() []int {
	counts := make([]int, m.NumNets()+1)
	for i := range m.Cells {
		for _, in := range m.Cells[i].Inputs() {
			counts[in]++
		}
	}
	return counts
}

// TransitiveFanin returns the set of cell indices in the combinational and
// sequential fan-in cone of the given nets (inclusive of DFFs encountered,
// without crossing them backwards — a DFF terminates the cone like a
// primary input does).
func (m *Module) TransitiveFanin(roots []Net) map[int]bool {
	seen := make(map[int]bool)
	stack := make([]int, 0, len(roots))
	for _, n := range roots {
		if d := m.Driver(n); d >= 0 && !seen[d] {
			seen[d] = true
			stack = append(stack, d)
		}
	}
	for len(stack) > 0 {
		ci := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c := &m.Cells[ci]
		if c.Kind.IsSequential() {
			continue
		}
		for _, in := range c.Inputs() {
			if d := m.Driver(in); d >= 0 && !seen[d] {
				seen[d] = true
				stack = append(stack, d)
			}
		}
	}
	return seen
}
