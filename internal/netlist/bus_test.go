package netlist

import (
	"testing"
)

func TestBusSliceConcatReverse(t *testing.T) {
	m := New("t")
	b := m.AddInput("x", 8)
	lo, hi := b.Slice(0, 4), b.Slice(4, 8)
	if got := lo.Concat(hi); len(got) != 8 || got[0] != b[0] || got[7] != b[7] {
		t.Fatal("concat broken")
	}
	r := b.Reversed()
	if r[0] != b[7] || r[7] != b[0] {
		t.Fatal("reverse broken")
	}
	// Slices are copies: mutating must not alias.
	lo[0] = InvalidNet
	if b[0] == InvalidNet {
		t.Fatal("Slice aliases underlying bus")
	}
}

func TestBusPermute(t *testing.T) {
	m := New("t")
	b := m.AddInput("x", 4)
	p := b.Permute([]int{1, 2, 3, 0})
	// output bit perm[i] = input bit i
	if p[1] != b[0] || p[2] != b[1] || p[3] != b[2] || p[0] != b[3] {
		t.Fatal("permute semantics wrong")
	}
}

func TestBusNibblesBytes(t *testing.T) {
	m := New("t")
	b := m.AddInput("x", 16)
	nibs := b.Nibbles()
	if len(nibs) != 4 || nibs[1][0] != b[4] {
		t.Fatal("Nibbles wrong")
	}
	bys := b.Bytes()
	if len(bys) != 2 || bys[1][0] != b[8] {
		t.Fatal("Bytes wrong")
	}
}

func TestReduceShapes(t *testing.T) {
	m := New("t")
	b := m.AddInput("x", 5)
	or := m.OrReduce(b)
	and := m.AndReduce(b)
	xor := m.XorReduce(b)
	m.AddOutput("y", Bus{or, and, xor})
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// A 5-input tree needs exactly 4 two-input gates.
	s := m.CollectStats()
	if s.ByKind[KindOr2] != 4 || s.ByKind[KindAnd2] != 4 || s.ByKind[KindXor2] != 4 {
		t.Fatalf("reduce gate counts wrong: %+v", s.ByKind)
	}
}

func TestReduceEmptyAndSingle(t *testing.T) {
	m := New("t")
	b := m.AddInput("x", 1)
	if m.OrReduce(nil) == InvalidNet || m.AndReduce(nil) == InvalidNet || m.XorReduce(nil) == InvalidNet {
		t.Fatal("empty reduce must return a constant net")
	}
	if m.OrReduce(b) != b[0] {
		t.Fatal("single-bit reduce must be the bit itself")
	}
}

func TestConstBus(t *testing.T) {
	m := New("t")
	b := m.ConstBus(6, 0b101001)
	m.AddOutput("y", b)
	for i, want := range []CellKind{KindConst1, KindConst0, KindConst0, KindConst1, KindConst0, KindConst1} {
		if got := m.DriverCell(b[i]).Kind; got != want {
			t.Fatalf("bit %d kind %s, want %s", i, got, want)
		}
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	m := New("t")
	a := m.AddInput("a", 2)
	b := m.AddInput("b", 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on width mismatch")
		}
	}()
	m.XorBus(a, b)
}

func TestInstantiateComposition(t *testing.T) {
	sub := New("half_adder")
	in := sub.AddInput("x", 2)
	sub.AddOutput("sum", Bus{sub.Xor(in[0], in[1])})
	sub.AddOutput("carry", Bus{sub.And(in[0], in[1])})

	m := New("top")
	a := m.AddInput("a", 2)
	outs, err := m.Instantiate(sub, "ha0", map[string]Bus{"x": a})
	if err != nil {
		t.Fatal(err)
	}
	m.AddOutput("s", outs["sum"])
	m.AddOutput("c", outs["carry"])
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Tags must carry the instance name.
	for _, c := range m.Cells {
		if c.Tag != "ha0" {
			t.Fatalf("tag %q, want ha0", c.Tag)
		}
	}
}

func TestInstantiateErrors(t *testing.T) {
	sub := New("s")
	in := sub.AddInput("x", 2)
	sub.AddOutput("y", Bus{sub.And(in[0], in[1])})

	m := New("top")
	a := m.AddInput("a", 1)
	if _, err := m.Instantiate(sub, "i", map[string]Bus{}); err == nil {
		t.Error("missing binding should fail")
	}
	if _, err := m.Instantiate(sub, "i", map[string]Bus{"x": a}); err == nil {
		t.Error("width mismatch should fail")
	}
	two := m.AddInput("b", 2)
	if _, err := m.Instantiate(sub, "i", map[string]Bus{"x": two, "zz": two}); err == nil {
		t.Error("unknown binding name should fail")
	}
}
