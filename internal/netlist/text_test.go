package netlist

import (
	"bytes"
	"strings"
	"testing"
)

func buildSample() *Module {
	m := New("sample")
	in := m.AddInput("x", 3)
	a := m.And(in[0], in[1])
	a2 := m.Xor(a, in[2])
	q := m.DFF(a2)
	keep := m.Not(q)
	m.DriverCell(keep).Keep = true
	m.DriverCell(keep).Tag = "redundant.path"
	m.AddOutput("y", Bus{keep})
	return m
}

func TestTextRoundTrip(t *testing.T) {
	m := buildSample()
	var buf bytes.Buffer
	if err := m.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != m.Name || got.NumNets() != m.NumNets() || len(got.Cells) != len(m.Cells) {
		t.Fatalf("structure differs after round trip")
	}
	for i := range m.Cells {
		a, b := m.Cells[i], got.Cells[i]
		if a.Kind != b.Kind || a.Out != b.Out || a.In != b.In || a.Keep != b.Keep || a.Tag != b.Tag {
			t.Fatalf("cell %d differs: %+v vs %+v", i, a, b)
		}
	}
	if got.Inputs[0].Name != "x" || got.Outputs[0].Name != "y" {
		t.Fatal("ports lost")
	}
}

func TestReadTextRejectsMalformed(t *testing.T) {
	cases := []string{
		"",                    // empty
		"module m\nnets 1\n",  // missing endmodule
		"nets 2\nendmodule\n", // nets before module
		"module m\nnets 1\ncell AND2 1 1 1\nendmodule\n", // double use of net 1 as out+in is fine structurally, but AND2 out=1 in=1,1 makes a cycle
		"module m\nnets 1\ncell FROB 1\nendmodule\n",     // unknown kind
		"module m\nnets 1\ncell INV 1 5\nendmodule\n",    // net id out of range
		"module m\nnets 1\ncell INV 1\nendmodule\n",      // arity mismatch
	}
	for i, src := range cases {
		if _, err := ReadText(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestReadTextSkipsCommentsAndBlanks(t *testing.T) {
	src := `# header comment
module m
nets 2

# a cell
input a 1
cell INV 2 1
output y 2
endmodule
`
	m, err := ReadText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cells) != 1 || m.Cells[0].Kind != KindInv {
		t.Fatal("parse result wrong")
	}
}

func TestWriteDOT(t *testing.T) {
	m := buildSample()
	var buf bytes.Buffer
	if err := m.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "AND2", "DFF", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}
