package netlist

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarises the structural content of a module.
type Stats struct {
	Name          string
	Nets          int
	Cells         int
	Combinational int // non-constant, non-sequential cells
	Sequential    int // DFFs
	Constants     int
	ByKind        map[CellKind]int
	LogicDepth    int // unit-delay critical path; -1 if cyclic
}

// CollectStats gathers structural statistics for the module.
func (m *Module) CollectStats() Stats {
	s := Stats{
		Name:   m.Name,
		Nets:   m.NumNets(),
		Cells:  len(m.Cells),
		ByKind: make(map[CellKind]int),
	}
	for i := range m.Cells {
		k := m.Cells[i].Kind
		s.ByKind[k]++
		switch {
		case k.IsSequential():
			s.Sequential++
		case k.IsConst():
			s.Constants++
		default:
			s.Combinational++
		}
	}
	if d, err := m.LogicDepth(); err == nil {
		s.LogicDepth = d
	} else {
		s.LogicDepth = -1
	}
	return s
}

// String renders the statistics as a compact multi-line report.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s: %d nets, %d cells (%d comb, %d seq, %d const), depth %d\n",
		s.Name, s.Nets, s.Cells, s.Combinational, s.Sequential, s.Constants, s.LogicDepth)
	kinds := make([]CellKind, 0, len(s.ByKind))
	for k := range s.ByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(&sb, "  %-6s %6d\n", k, s.ByKind[k])
	}
	return sb.String()
}
