package netlist

import "fmt"

// Instantiate copies every cell of sub into m, connecting sub's input ports
// to the given buses and returning the buses corresponding to sub's output
// ports, keyed by port name. Net names are prefixed with instName for
// debuggability, and every copied cell's Tag is prefixed with "instName."
// so fault-injection groups stay addressable after composition.
//
// bindings must supply a bus of matching width for every input port of sub.
func (m *Module) Instantiate(sub *Module, instName string, bindings map[string]Bus) (map[string]Bus, error) {
	netMap := make([]Net, sub.NumNets()+1)

	for i := range sub.Inputs {
		p := &sub.Inputs[i]
		bus, ok := bindings[p.Name]
		if !ok {
			return nil, fmt.Errorf("netlist: instantiate %q: missing binding for input %q", sub.Name, p.Name)
		}
		if len(bus) != p.Width() {
			return nil, fmt.Errorf("netlist: instantiate %q: input %q width %d, binding width %d",
				sub.Name, p.Name, p.Width(), len(bus))
		}
		for bi, n := range p.Bits {
			if netMap[n] != InvalidNet && netMap[n] != bus[bi] {
				return nil, fmt.Errorf("netlist: instantiate %q: input net %q bound twice", sub.Name, sub.NetName(n))
			}
			netMap[n] = bus[bi]
		}
	}
	for name := range bindings {
		if sub.FindInput(name) == nil {
			return nil, fmt.Errorf("netlist: instantiate %q: binding %q matches no input port", sub.Name, name)
		}
	}

	// Allocate fresh nets for every driven net of sub not already mapped.
	for ci := range sub.Cells {
		out := sub.Cells[ci].Out
		if netMap[out] == InvalidNet {
			netMap[out] = m.NewNet(instName + "." + sub.NetName(out))
		}
	}

	for ci := range sub.Cells {
		c := &sub.Cells[ci]
		ins := make([]Net, 0, 3)
		for _, in := range c.Inputs() {
			mapped := netMap[in]
			if mapped == InvalidNet {
				return nil, fmt.Errorf("netlist: instantiate %q: net %q is read but neither driven nor an input",
					sub.Name, sub.NetName(in))
			}
			ins = append(ins, mapped)
		}
		nc := m.AddCell(c.Kind, netMap[c.Out], ins...)
		nc.Keep = c.Keep
		if c.Tag != "" {
			nc.Tag = instName + "." + c.Tag
		} else {
			nc.Tag = instName
		}
	}

	outs := make(map[string]Bus, len(sub.Outputs))
	for i := range sub.Outputs {
		p := &sub.Outputs[i]
		bus := make(Bus, p.Width())
		for bi, n := range p.Bits {
			if netMap[n] == InvalidNet {
				return nil, fmt.Errorf("netlist: instantiate %q: output %q bit %d undriven", sub.Name, p.Name, bi)
			}
			bus[bi] = netMap[n]
		}
		outs[p.Name] = bus
	}
	return outs, nil
}

// MustInstantiate is Instantiate that panics on error; builders use it for
// programmatic composition where failures are construction bugs.
func (m *Module) MustInstantiate(sub *Module, instName string, bindings map[string]Bus) map[string]Bus {
	outs, err := m.Instantiate(sub, instName, bindings)
	if err != nil {
		panic(err)
	}
	return outs
}

// Clone returns a deep copy of the module.
func (m *Module) Clone() *Module {
	out := &Module{
		Name:     m.Name,
		netNames: append([]string(nil), m.netNames...),
		driver:   append([]int32(nil), m.driver...),
		Cells:    append([]Cell(nil), m.Cells...),
	}
	out.Inputs = make([]Port, len(m.Inputs))
	for i, p := range m.Inputs {
		out.Inputs[i] = Port{Name: p.Name, Bits: p.Bits.Clone()}
	}
	out.Outputs = make([]Port, len(m.Outputs))
	for i, p := range m.Outputs {
		out.Outputs[i] = Port{Name: p.Name, Bits: p.Bits.Clone()}
	}
	return out
}
