package netlist

import (
	"strings"
	"testing"
)

func TestKindStringRoundTrip(t *testing.T) {
	for k := KindConst0; k < kindCount; k++ {
		got, err := KindFromString(k.String())
		if err != nil || got != k {
			t.Errorf("KindFromString(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := KindFromString("FROB"); err == nil {
		t.Error("expected error for unknown kind")
	}
}

func TestKindArity(t *testing.T) {
	cases := map[CellKind]int{
		KindConst0: 0, KindConst1: 0, KindBuf: 1, KindInv: 1,
		KindAnd2: 2, KindOr2: 2, KindNand2: 2, KindNor2: 2,
		KindXor2: 2, KindXnor2: 2, KindMux2: 3, KindDFF: 1,
	}
	for k, want := range cases {
		if k.Arity() != want {
			t.Errorf("%s arity = %d, want %d", k, k.Arity(), want)
		}
	}
}

func TestBuilderBasics(t *testing.T) {
	m := New("t")
	in := m.AddInput("x", 2)
	y := m.And(in[0], in[1])
	m.AddOutput("y", Bus{y})

	if m.NumNets() != 3 {
		t.Errorf("NumNets = %d, want 3", m.NumNets())
	}
	if m.NumCombinational() != 1 || m.NumDFFs() != 0 {
		t.Errorf("cell counts wrong")
	}
	if d := m.DriverCell(y); d == nil || d.Kind != KindAnd2 {
		t.Errorf("driver of y wrong")
	}
	if m.Driver(in[0]) != -1 {
		t.Errorf("input should be undriven")
	}
	if err := m.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestDoubleDrivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double drive")
		}
	}()
	m := New("t")
	in := m.AddInput("x", 1)
	n := m.NewNet("n")
	m.AddCell(KindBuf, n, in[0])
	m.AddCell(KindInv, n, in[0])
}

func TestArityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arity mismatch")
		}
	}()
	m := New("t")
	in := m.AddInput("x", 1)
	n := m.NewNet("n")
	m.AddCell(KindAnd2, n, in[0])
}

func TestValidateCatchesFloatingInput(t *testing.T) {
	m := New("t")
	a := m.NewNet("floating")
	b := m.Not(a)
	m.AddOutput("y", Bus{b})
	if err := m.Validate(); err == nil {
		t.Fatal("expected validation error for floating net")
	}
}

func TestValidateCatchesDrivenInputPort(t *testing.T) {
	m := New("t")
	in := m.AddInput("x", 1)
	n := m.Not(in[0])
	m.AddInputNets("bad", Bus{n})
	if err := m.Validate(); err == nil {
		t.Fatal("expected validation error for driven input port")
	}
}

func TestValidateCatchesDuplicatePorts(t *testing.T) {
	m := New("t")
	a := m.AddInput("x", 1)
	b := m.AddInput("x", 1)
	m.AddOutput("y", Bus{m.And(a[0], b[0])})
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate input") {
		t.Fatalf("expected duplicate-port error, got %v", err)
	}
}

func TestLevelizeDetectsCombinationalCycle(t *testing.T) {
	m := New("t")
	a := m.NewNet("a")
	b := m.NewNet("b")
	m.AddCell(KindInv, a, b)
	m.AddCell(KindInv, b, a)
	if _, err := m.Levelize(); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestLevelizeAllowsCycleThroughDFF(t *testing.T) {
	m := New("t")
	q := m.NewNet("q")
	d := m.Not(q)
	m.AddCell(KindDFF, q, d)
	m.AddOutput("y", Bus{q})
	if _, err := m.Levelize(); err != nil {
		t.Fatalf("register feedback should levelize: %v", err)
	}
}

func TestLevelizeRespectsDependencies(t *testing.T) {
	m := New("t")
	in := m.AddInput("x", 4)
	y := m.Xor(m.And(in[0], in[1]), m.Or(in[2], in[3]))
	m.AddOutput("y", Bus{y})
	order, err := m.Levelize()
	if err != nil {
		t.Fatal(err)
	}
	posOf := make(map[int]int)
	for i, ci := range order {
		posOf[ci] = i
	}
	for _, ci := range order {
		for _, inNet := range m.Cells[ci].Inputs() {
			if d := m.Driver(inNet); d >= 0 {
				if posOf[d] >= posOf[ci] {
					t.Fatalf("cell %d scheduled before its driver %d", ci, d)
				}
			}
		}
	}
}

func TestLogicDepth(t *testing.T) {
	m := New("t")
	in := m.AddInput("x", 2)
	a := m.And(in[0], in[1]) // depth 1
	b := m.Not(a)            // depth 2
	c := m.Xor(b, in[0])     // depth 3
	m.AddOutput("y", Bus{c})
	d, err := m.LogicDepth()
	if err != nil || d != 3 {
		t.Fatalf("LogicDepth = %d, %v; want 3", d, err)
	}
}

func TestFanoutCounts(t *testing.T) {
	m := New("t")
	in := m.AddInput("x", 1)
	a := m.Not(in[0])
	m.AddOutput("y", Bus{m.And(a, a)})
	counts := m.FanoutCounts()
	if counts[in[0]] != 1 || counts[a] != 2 {
		t.Fatalf("fanout counts wrong: %v %v", counts[in[0]], counts[a])
	}
}

func TestTransitiveFanin(t *testing.T) {
	m := New("t")
	in := m.AddInput("x", 3)
	a := m.And(in[0], in[1])
	b := m.Not(in[2]) // not in the cone of y
	y := m.Buf(a)
	m.AddOutput("y", Bus{y})
	m.AddOutput("z", Bus{b})
	cone := m.TransitiveFanin([]Net{y})
	if len(cone) != 2 {
		t.Fatalf("cone size = %d, want 2 (and+buf)", len(cone))
	}
	if cone[m.Driver(b)] {
		t.Fatal("unrelated cell in cone")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := New("t")
	in := m.AddInput("x", 1)
	m.AddOutput("y", Bus{m.Not(in[0])})
	c := m.Clone()
	c.Cells[0].Kind = KindBuf
	c.Inputs[0].Name = "z"
	if m.Cells[0].Kind != KindInv || m.Inputs[0].Name != "x" {
		t.Fatal("clone shares storage with original")
	}
}

func TestSetTag(t *testing.T) {
	m := New("t")
	in := m.AddInput("x", 1)
	n := m.Not(in[0])
	if !m.SetTag(n, "probe") {
		t.Fatal("SetTag failed on driven net")
	}
	if m.DriverCell(n).Tag != "probe" {
		t.Fatal("tag not set")
	}
	if m.SetTag(in[0], "nope") {
		t.Fatal("SetTag should fail on undriven net")
	}
}

func TestStats(t *testing.T) {
	m := New("t")
	in := m.AddInput("x", 2)
	q := m.DFF(m.And(in[0], in[1]))
	m.AddOutput("y", Bus{m.Xor(q, m.Const1())})
	s := m.CollectStats()
	if s.Combinational != 2 || s.Sequential != 1 || s.Constants != 1 {
		t.Fatalf("stats wrong: %+v", s)
	}
	if !strings.Contains(s.String(), "XOR2") {
		t.Fatal("stats string missing kinds")
	}
}
