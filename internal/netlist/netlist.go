// Package netlist defines the structural gate-level intermediate
// representation used throughout the repository: the synthesis engine emits
// it, the standard-cell library prices it, the simulator executes it and the
// fault engine injects into it.
//
// A Module is a flat netlist: a set of nets (single-bit wires) and cells
// (gates) driving them. Sequential elements are DFF cells; everything else
// is combinational. Primary inputs and outputs are named ports grouping nets
// into buses, with bit 0 of a bus being the least-significant bit.
package netlist

import (
	"fmt"
)

// Net identifies a single-bit wire within one Module. The zero value is not
// a valid net; valid nets are created with Module.NewNet.
type Net int32

// InvalidNet is the zero Net value, used to mark absent connections.
const InvalidNet Net = 0

// CellKind enumerates the supported gate types. The set intentionally
// mirrors a small standard-cell library: 1- and 2-input combinational cells,
// a 2:1 multiplexer and a D flip-flop.
type CellKind uint8

// Supported cell kinds.
const (
	KindInvalid CellKind = iota
	KindConst0           // constant logic 0, no inputs
	KindConst1           // constant logic 1, no inputs
	KindBuf              // out = a
	KindInv              // out = NOT a
	KindAnd2             // out = a AND b
	KindOr2              // out = a OR b
	KindNand2            // out = NOT (a AND b)
	KindNor2             // out = NOT (a OR b)
	KindXor2             // out = a XOR b
	KindXnor2            // out = NOT (a XOR b)
	KindMux2             // out = sel ? b : a  (inputs: a, b, sel)
	KindDFF              // out(t+1) = in(t); sequential
	kindCount
)

var kindNames = [...]string{
	KindInvalid: "INVALID",
	KindConst0:  "CONST0",
	KindConst1:  "CONST1",
	KindBuf:     "BUF",
	KindInv:     "INV",
	KindAnd2:    "AND2",
	KindOr2:     "OR2",
	KindNand2:   "NAND2",
	KindNor2:    "NOR2",
	KindXor2:    "XOR2",
	KindXnor2:   "XNOR2",
	KindMux2:    "MUX2",
	KindDFF:     "DFF",
}

var kindArity = [...]int{
	KindInvalid: 0,
	KindConst0:  0,
	KindConst1:  0,
	KindBuf:     1,
	KindInv:     1,
	KindAnd2:    2,
	KindOr2:     2,
	KindNand2:   2,
	KindNor2:    2,
	KindXor2:    2,
	KindXnor2:   2,
	KindMux2:    3,
	KindDFF:     1,
}

// String returns the canonical upper-case mnemonic of the kind.
func (k CellKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("CellKind(%d)", uint8(k))
}

// Arity returns the number of inputs the kind requires.
func (k CellKind) Arity() int {
	if int(k) < len(kindArity) {
		return kindArity[k]
	}
	return 0
}

// IsSequential reports whether the kind is a state-holding element.
func (k CellKind) IsSequential() bool { return k == KindDFF }

// IsConst reports whether the kind is a constant driver.
func (k CellKind) IsConst() bool { return k == KindConst0 || k == KindConst1 }

// KindFromString parses a mnemonic produced by CellKind.String.
func KindFromString(s string) (CellKind, error) {
	for k := KindConst0; k < kindCount; k++ {
		if kindNames[k] == s {
			return k, nil
		}
	}
	return KindInvalid, fmt.Errorf("netlist: unknown cell kind %q", s)
}

// Cell is one gate instance. Inputs are ordered; for KindMux2 the order is
// (a, b, sel) with out = sel ? b : a.
type Cell struct {
	Kind CellKind
	In   [3]Net // only the first Kind.Arity() entries are meaningful
	Out  Net
	// Keep marks the cell as protected from optimisation. Synthesis of
	// redundant countermeasure paths sets it so that equivalence-driven
	// passes cannot merge the actual and redundant computations — the
	// netlist-level analogue of the paper's synthesis constraint
	// "ensuring the redundant paths are not optimised away".
	Keep bool
	// Tag is an optional free-form annotation (for example the fault-
	// injection group a gate belongs to, such as "sbox13.round31").
	Tag string
}

// Inputs returns the meaningful input nets of the cell.
func (c *Cell) Inputs() []Net { return c.In[:c.Kind.Arity()] }

// Port is a named bundle of nets forming a bus. Bits[0] is the LSB.
type Port struct {
	Name string
	Bits Bus
}

// Width returns the number of bits in the port.
func (p *Port) Width() int { return len(p.Bits) }

// Module is a flat gate-level netlist.
type Module struct {
	Name string

	// netNames[i] is the debug name of Net(i); entry 0 is a placeholder
	// for InvalidNet.
	netNames []string
	// driver[i] is the index into Cells of the cell driving Net(i), or -1
	// if the net is undriven (a primary input or dangling).
	driver []int32

	Cells []Cell

	Inputs  []Port
	Outputs []Port
}

// New creates an empty module with the given name.
func New(name string) *Module {
	return &Module{
		Name:     name,
		netNames: []string{""},
		driver:   []int32{-1},
	}
}

// NumNets returns the number of allocated nets (excluding InvalidNet).
func (m *Module) NumNets() int { return len(m.netNames) - 1 }

// NetName returns the debug name given to n at creation time.
func (m *Module) NetName(n Net) string {
	if n <= 0 || int(n) >= len(m.netNames) {
		return fmt.Sprintf("<bad-net-%d>", n)
	}
	return m.netNames[n]
}

// NewNet allocates a fresh net with the given debug name.
func (m *Module) NewNet(name string) Net {
	m.netNames = append(m.netNames, name)
	m.driver = append(m.driver, -1)
	return Net(len(m.netNames) - 1)
}

// NewNets allocates width nets named prefix[0], prefix[1], ...
func (m *Module) NewNets(prefix string, width int) Bus {
	bus := make(Bus, width)
	for i := range bus {
		bus[i] = m.NewNet(fmt.Sprintf("%s[%d]", prefix, i))
	}
	return bus
}

// Driver returns the cell index driving n, or -1 if undriven.
func (m *Module) Driver(n Net) int {
	if n <= 0 || int(n) >= len(m.driver) {
		return -1
	}
	return int(m.driver[n])
}

// DriverCell returns a pointer to the cell driving n, or nil.
func (m *Module) DriverCell(n Net) *Cell {
	idx := m.Driver(n)
	if idx < 0 {
		return nil
	}
	return &m.Cells[idx]
}

// AddCell appends a gate driving out. It panics on arity mismatch, invalid
// nets, or if out already has a driver: the IR is single-assignment.
func (m *Module) AddCell(kind CellKind, out Net, in ...Net) *Cell {
	if kind.Arity() != len(in) {
		panic(fmt.Sprintf("netlist: %s requires %d inputs, got %d", kind, kind.Arity(), len(in)))
	}
	m.checkNet(out)
	if m.driver[out] >= 0 {
		panic(fmt.Sprintf("netlist: net %q already driven", m.NetName(out)))
	}
	c := Cell{Kind: kind, Out: out}
	for i, n := range in {
		m.checkNet(n)
		c.In[i] = n
	}
	m.Cells = append(m.Cells, c)
	m.driver[out] = int32(len(m.Cells) - 1)
	return &m.Cells[len(m.Cells)-1]
}

func (m *Module) checkNet(n Net) {
	if n <= 0 || int(n) >= len(m.netNames) {
		panic(fmt.Sprintf("netlist: invalid net %d in module %q", n, m.Name))
	}
}

// gate allocates a fresh net and drives it with a new cell of the kind.
func (m *Module) gate(kind CellKind, name string, in ...Net) Net {
	out := m.NewNet(name)
	m.AddCell(kind, out, in...)
	return out
}

// Const0 returns a net driven by constant 0.
func (m *Module) Const0() Net { return m.gate(KindConst0, "const0") }

// Const1 returns a net driven by constant 1.
func (m *Module) Const1() Net { return m.gate(KindConst1, "const1") }

// Buf returns a net driven by a buffer of a.
func (m *Module) Buf(a Net) Net { return m.gate(KindBuf, "buf", a) }

// Not returns a net driven by the complement of a.
func (m *Module) Not(a Net) Net { return m.gate(KindInv, "inv", a) }

// And returns a net driven by a AND b.
func (m *Module) And(a, b Net) Net { return m.gate(KindAnd2, "and", a, b) }

// Or returns a net driven by a OR b.
func (m *Module) Or(a, b Net) Net { return m.gate(KindOr2, "or", a, b) }

// Nand returns a net driven by NOT(a AND b).
func (m *Module) Nand(a, b Net) Net { return m.gate(KindNand2, "nand", a, b) }

// Nor returns a net driven by NOT(a OR b).
func (m *Module) Nor(a, b Net) Net { return m.gate(KindNor2, "nor", a, b) }

// Xor returns a net driven by a XOR b.
func (m *Module) Xor(a, b Net) Net { return m.gate(KindXor2, "xor", a, b) }

// Xnor returns a net driven by NOT(a XOR b).
func (m *Module) Xnor(a, b Net) Net { return m.gate(KindXnor2, "xnor", a, b) }

// Mux returns a net driven by sel ? b : a.
func (m *Module) Mux(a, b, sel Net) Net { return m.gate(KindMux2, "mux", a, b, sel) }

// DFF returns the Q net of a new flip-flop with data input d. State resets
// to 0 at the start of simulation.
func (m *Module) DFF(d Net) Net { return m.gate(KindDFF, "dff_q", d) }

// AddInput declares a primary-input port of the given width and returns its
// bus. The nets are left undriven; the simulator supplies their values.
func (m *Module) AddInput(name string, width int) Bus {
	bus := m.NewNets(name, width)
	m.Inputs = append(m.Inputs, Port{Name: name, Bits: bus.Clone()})
	return bus
}

// AddInputNets declares an input port over already-allocated nets.
func (m *Module) AddInputNets(name string, bus Bus) {
	for _, n := range bus {
		m.checkNet(n)
	}
	m.Inputs = append(m.Inputs, Port{Name: name, Bits: bus.Clone()})
}

// AddOutput declares a primary-output port over the given nets.
func (m *Module) AddOutput(name string, bus Bus) {
	for _, n := range bus {
		m.checkNet(n)
	}
	m.Outputs = append(m.Outputs, Port{Name: name, Bits: bus.Clone()})
}

// FindInput returns the input port with the given name, or nil.
func (m *Module) FindInput(name string) *Port {
	for i := range m.Inputs {
		if m.Inputs[i].Name == name {
			return &m.Inputs[i]
		}
	}
	return nil
}

// FindOutput returns the output port with the given name, or nil.
func (m *Module) FindOutput(name string) *Port {
	for i := range m.Outputs {
		if m.Outputs[i].Name == name {
			return &m.Outputs[i]
		}
	}
	return nil
}

// NumDFFs returns the number of sequential cells.
func (m *Module) NumDFFs() int {
	n := 0
	for i := range m.Cells {
		if m.Cells[i].Kind == KindDFF {
			n++
		}
	}
	return n
}

// NumCombinational returns the number of non-DFF, non-constant cells.
func (m *Module) NumCombinational() int {
	n := 0
	for i := range m.Cells {
		k := m.Cells[i].Kind
		if !k.IsSequential() && !k.IsConst() {
			n++
		}
	}
	return n
}

// SetTag sets the annotation tag on the cell driving n, if any, and returns
// whether a driver existed.
func (m *Module) SetTag(n Net, tag string) bool {
	c := m.DriverCell(n)
	if c == nil {
		return false
	}
	c.Tag = tag
	return true
}
