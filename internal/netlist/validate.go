package netlist

import (
	"errors"
	"fmt"
)

// Validate performs structural sanity checks: every read net is driven or a
// primary input, ports reference valid nets, no combinational cycles, and
// output ports are fully driven. It returns all problems found joined into
// one error, or nil if the module is well-formed.
func (m *Module) Validate() error {
	var errs []error

	isInput := make([]bool, m.NumNets()+1)
	for i := range m.Inputs {
		for bi, n := range m.Inputs[i].Bits {
			if n <= 0 || int(n) > m.NumNets() {
				errs = append(errs, fmt.Errorf("input port %q bit %d: invalid net", m.Inputs[i].Name, bi))
				continue
			}
			if m.Driver(n) >= 0 {
				errs = append(errs, fmt.Errorf("input port %q bit %d: net %q is driven by a cell",
					m.Inputs[i].Name, bi, m.NetName(n)))
			}
			isInput[n] = true
		}
	}

	for ci := range m.Cells {
		c := &m.Cells[ci]
		for _, in := range c.Inputs() {
			if in <= 0 || int(in) > m.NumNets() {
				errs = append(errs, fmt.Errorf("cell %d (%s): invalid input net", ci, c.Kind))
				continue
			}
			if m.Driver(in) < 0 && !isInput[in] {
				errs = append(errs, fmt.Errorf("cell %d (%s): input net %q is floating",
					ci, c.Kind, m.NetName(in)))
			}
		}
	}

	for i := range m.Outputs {
		for bi, n := range m.Outputs[i].Bits {
			if n <= 0 || int(n) > m.NumNets() {
				errs = append(errs, fmt.Errorf("output port %q bit %d: invalid net", m.Outputs[i].Name, bi))
				continue
			}
			if m.Driver(n) < 0 && !isInput[n] {
				errs = append(errs, fmt.Errorf("output port %q bit %d: net %q is undriven",
					m.Outputs[i].Name, bi, m.NetName(n)))
			}
		}
	}

	seenIn := make(map[string]bool)
	for i := range m.Inputs {
		if seenIn[m.Inputs[i].Name] {
			errs = append(errs, fmt.Errorf("duplicate input port %q", m.Inputs[i].Name))
		}
		seenIn[m.Inputs[i].Name] = true
	}
	seenOut := make(map[string]bool)
	for i := range m.Outputs {
		if seenOut[m.Outputs[i].Name] {
			errs = append(errs, fmt.Errorf("duplicate output port %q", m.Outputs[i].Name))
		}
		seenOut[m.Outputs[i].Name] = true
	}

	if _, err := m.Levelize(); err != nil {
		errs = append(errs, err)
	}

	return errors.Join(errs...)
}
