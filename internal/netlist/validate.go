package netlist

import (
	"errors"
	"fmt"
)

// Check identifiers for structural problems. The same identifiers are used
// as rule IDs by the static analyzer in internal/lint, which delegates to
// StructuralProblems so that Validate and the linter share one
// implementation and report identical net/cell locations.
const (
	CheckFloatingNet   = "floating-net"   // read or exported net with no driver
	CheckMultiDriven   = "multi-driven"   // input-port net also driven by a cell
	CheckCombLoop      = "comb-loop"      // combinational cycle
	CheckDuplicatePort = "duplicate-port" // two ports share a name
	CheckPortWidth     = "port-width"     // port references an invalid net
)

// Problem is one structural defect found by StructuralProblems. Cell is the
// index of the offending cell or -1; Net is the offending net or
// InvalidNet; Port names the offending port ("" when not port-related).
type Problem struct {
	Check   string
	Cell    int
	Net     Net
	Port    string
	Message string
}

// String renders the problem as Validate historically formatted it.
func (p Problem) String() string { return p.Message }

// StructuralProblems performs the structural sanity checks behind Validate
// and returns them as structured problems: every read net is driven or a
// primary input, ports reference valid nets, port names are unique, output
// ports are fully driven, and the combinational logic is acyclic.
func (m *Module) StructuralProblems() []Problem {
	var ps []Problem

	isInput := make([]bool, m.NumNets()+1)
	for i := range m.Inputs {
		p := &m.Inputs[i]
		for bi, n := range p.Bits {
			if n <= 0 || int(n) > m.NumNets() {
				ps = append(ps, Problem{Check: CheckPortWidth, Cell: -1, Port: p.Name,
					Message: fmt.Sprintf("input port %q bit %d: invalid net", p.Name, bi)})
				continue
			}
			if m.Driver(n) >= 0 {
				ps = append(ps, Problem{Check: CheckMultiDriven, Cell: m.Driver(n), Net: n, Port: p.Name,
					Message: fmt.Sprintf("input port %q bit %d: net %q is driven by a cell",
						p.Name, bi, m.NetName(n))})
			}
			isInput[n] = true
		}
	}

	for ci := range m.Cells {
		c := &m.Cells[ci]
		for _, in := range c.Inputs() {
			if in <= 0 || int(in) > m.NumNets() {
				ps = append(ps, Problem{Check: CheckFloatingNet, Cell: ci,
					Message: fmt.Sprintf("cell %d (%s): invalid input net", ci, c.Kind)})
				continue
			}
			if m.Driver(in) < 0 && !isInput[in] {
				ps = append(ps, Problem{Check: CheckFloatingNet, Cell: ci, Net: in,
					Message: fmt.Sprintf("cell %d (%s): input net %q is floating",
						ci, c.Kind, m.NetName(in))})
			}
		}
	}

	for i := range m.Outputs {
		p := &m.Outputs[i]
		for bi, n := range p.Bits {
			if n <= 0 || int(n) > m.NumNets() {
				ps = append(ps, Problem{Check: CheckPortWidth, Cell: -1, Port: p.Name,
					Message: fmt.Sprintf("output port %q bit %d: invalid net", p.Name, bi)})
				continue
			}
			if m.Driver(n) < 0 && !isInput[n] {
				ps = append(ps, Problem{Check: CheckFloatingNet, Cell: -1, Net: n, Port: p.Name,
					Message: fmt.Sprintf("output port %q bit %d: net %q is undriven",
						p.Name, bi, m.NetName(n))})
			}
		}
	}

	seenIn := make(map[string]bool)
	for i := range m.Inputs {
		if seenIn[m.Inputs[i].Name] {
			ps = append(ps, Problem{Check: CheckDuplicatePort, Cell: -1, Port: m.Inputs[i].Name,
				Message: fmt.Sprintf("duplicate input port %q", m.Inputs[i].Name)})
		}
		seenIn[m.Inputs[i].Name] = true
	}
	seenOut := make(map[string]bool)
	for i := range m.Outputs {
		if seenOut[m.Outputs[i].Name] {
			ps = append(ps, Problem{Check: CheckDuplicatePort, Cell: -1, Port: m.Outputs[i].Name,
				Message: fmt.Sprintf("duplicate output port %q", m.Outputs[i].Name)})
		}
		seenOut[m.Outputs[i].Name] = true
	}

	if _, err := m.Levelize(); err != nil {
		ps = append(ps, Problem{Check: CheckCombLoop, Cell: -1, Message: err.Error()})
	}

	return ps
}

// Validate performs structural sanity checks: every read net is driven or a
// primary input, ports reference valid nets, no combinational cycles, and
// output ports are fully driven. It returns all problems found joined into
// one error, or nil if the module is well-formed.
func (m *Module) Validate() error {
	ps := m.StructuralProblems()
	if len(ps) == 0 {
		return nil
	}
	errs := make([]error, len(ps))
	for i, p := range ps {
		errs[i] = errors.New(p.Message)
	}
	return errors.Join(errs...)
}
