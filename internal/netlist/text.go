package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteText serialises the module in the compact "scone netlist" text
// format. The format is line oriented:
//
//	# comment
//	module <name>
//	nets <count>
//	netname <id> <name>
//	input <portname> <id> <id> ...
//	output <portname> <id> <id> ...
//	cell <KIND> <out-id> <in-id>... [keep] [tag=<tag>]
//	endmodule
//
// Tags must not contain whitespace; the builders in this repository only
// create such tags.
func (m *Module) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# scone netlist v1\n")
	fmt.Fprintf(bw, "module %s\n", m.Name)
	fmt.Fprintf(bw, "nets %d\n", m.NumNets())
	for n := 1; n <= m.NumNets(); n++ {
		if name := m.netNames[n]; name != "" {
			fmt.Fprintf(bw, "netname %d %s\n", n, strings.ReplaceAll(name, " ", "_"))
		}
	}
	for i := range m.Inputs {
		p := &m.Inputs[i]
		fmt.Fprintf(bw, "input %s", p.Name)
		for _, n := range p.Bits {
			fmt.Fprintf(bw, " %d", n)
		}
		fmt.Fprintln(bw)
	}
	for i := range m.Outputs {
		p := &m.Outputs[i]
		fmt.Fprintf(bw, "output %s", p.Name)
		for _, n := range p.Bits {
			fmt.Fprintf(bw, " %d", n)
		}
		fmt.Fprintln(bw)
	}
	for ci := range m.Cells {
		c := &m.Cells[ci]
		fmt.Fprintf(bw, "cell %s %d", c.Kind, c.Out)
		for _, in := range c.Inputs() {
			fmt.Fprintf(bw, " %d", in)
		}
		if c.Keep {
			fmt.Fprint(bw, " keep")
		}
		if c.Tag != "" {
			fmt.Fprintf(bw, " tag=%s", strings.ReplaceAll(c.Tag, " ", "_"))
		}
		fmt.Fprintln(bw)
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}

// ReadText parses a module previously written with WriteText. The parsed
// module must pass Validate; use ReadTextLax to load structurally broken
// netlists (for example the seeded-violation fixtures the linter's tests
// run on).
func ReadText(r io.Reader) (*Module, error) {
	return readText(r, true)
}

// ReadTextLax parses a module without requiring it to pass Validate. Net
// IDs and cell arities are still checked (the in-memory IR cannot
// represent those errors); floating nets, driven inputs, duplicate ports
// and combinational loops are allowed through so that static-analysis
// tools can diagnose them.
func ReadTextLax(r io.Reader) (*Module, error) {
	return readText(r, false)
}

func readText(r io.Reader, validate bool) (*Module, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var m *Module
	lineNo := 0
	declaredNets := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "module":
			if len(fields) != 2 {
				return nil, fmt.Errorf("netlist: line %d: malformed module line", lineNo)
			}
			m = New(fields[1])
		case "nets":
			if m == nil {
				return nil, fmt.Errorf("netlist: line %d: nets before module", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("netlist: line %d: malformed nets line", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("netlist: line %d: bad net count", lineNo)
			}
			declaredNets = n
			for i := 0; i < n; i++ {
				m.NewNet("")
			}
		case "netname":
			if m == nil || len(fields) != 3 {
				return nil, fmt.Errorf("netlist: line %d: malformed netname line", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id <= 0 || id > declaredNets {
				return nil, fmt.Errorf("netlist: line %d: bad net id", lineNo)
			}
			m.netNames[id] = fields[2]
		case "input", "output":
			if m == nil || len(fields) < 2 {
				return nil, fmt.Errorf("netlist: line %d: malformed port line", lineNo)
			}
			bus, err := parseNetIDs(fields[2:], declaredNets)
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: %v", lineNo, err)
			}
			port := Port{Name: fields[1], Bits: bus}
			if fields[0] == "input" {
				m.Inputs = append(m.Inputs, port)
			} else {
				m.Outputs = append(m.Outputs, port)
			}
		case "cell":
			if m == nil || len(fields) < 3 {
				return nil, fmt.Errorf("netlist: line %d: malformed cell line", lineNo)
			}
			kind, err := KindFromString(fields[1])
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: %v", lineNo, err)
			}
			rest := fields[2:]
			keep := false
			tag := ""
			for len(rest) > 0 {
				last := rest[len(rest)-1]
				if last == "keep" {
					keep = true
					rest = rest[:len(rest)-1]
				} else if strings.HasPrefix(last, "tag=") {
					tag = strings.TrimPrefix(last, "tag=")
					rest = rest[:len(rest)-1]
				} else {
					break
				}
			}
			ids, err := parseNetIDs(rest, declaredNets)
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: %v", lineNo, err)
			}
			if len(ids) != 1+kind.Arity() {
				return nil, fmt.Errorf("netlist: line %d: %s expects %d inputs, got %d",
					lineNo, kind, kind.Arity(), len(ids)-1)
			}
			if m.Driver(ids[0]) >= 0 {
				return nil, fmt.Errorf("netlist: line %d: net %d already driven", lineNo, ids[0])
			}
			c := m.AddCell(kind, ids[0], ids[1:]...)
			c.Keep = keep
			c.Tag = tag
		case "endmodule":
			if m == nil {
				return nil, fmt.Errorf("netlist: line %d: endmodule before module", lineNo)
			}
			if validate {
				if err := m.Validate(); err != nil {
					return nil, fmt.Errorf("netlist: parsed module invalid: %w", err)
				}
			}
			return m, nil
		default:
			return nil, fmt.Errorf("netlist: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("netlist: missing endmodule")
}

func parseNetIDs(fields []string, max int) (Bus, error) {
	bus := make(Bus, 0, len(fields))
	for _, f := range fields {
		id, err := strconv.Atoi(f)
		if err != nil || id <= 0 || id > max {
			return nil, fmt.Errorf("bad net id %q", f)
		}
		bus = append(bus, Net(id))
	}
	return bus, nil
}

// WriteDOT emits a Graphviz representation of the module, useful for
// inspecting small S-box netlists.
func (m *Module) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=LR;\n", m.Name)
	for i := range m.Inputs {
		for bi, n := range m.Inputs[i].Bits {
			fmt.Fprintf(bw, "  n%d [shape=triangle,label=\"%s[%d]\"];\n", n, m.Inputs[i].Name, bi)
		}
	}
	for ci := range m.Cells {
		c := &m.Cells[ci]
		shape := "box"
		if c.Kind.IsSequential() {
			shape = "box3d"
		}
		fmt.Fprintf(bw, "  c%d [shape=%s,label=\"%s\"];\n", ci, shape, c.Kind)
		for _, in := range c.Inputs() {
			if d := m.Driver(in); d >= 0 {
				fmt.Fprintf(bw, "  c%d -> c%d;\n", d, ci)
			} else {
				fmt.Fprintf(bw, "  n%d -> c%d;\n", in, ci)
			}
		}
	}
	for i := range m.Outputs {
		for bi, n := range m.Outputs[i].Bits {
			fmt.Fprintf(bw, "  o%d_%d [shape=invtriangle,label=\"%s[%d]\"];\n", i, bi, m.Outputs[i].Name, bi)
			if d := m.Driver(n); d >= 0 {
				fmt.Fprintf(bw, "  c%d -> o%d_%d;\n", d, i, bi)
			} else {
				fmt.Fprintf(bw, "  n%d -> o%d_%d;\n", n, i, bi)
			}
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
