package netlist

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadText hardens the netlist text parser: arbitrary input must never
// panic, and anything that parses must survive a write/re-read round trip.
func FuzzReadText(f *testing.F) {
	var buf bytes.Buffer
	if err := buildSample().WriteText(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("module m\nnets 1\nendmodule\n")
	f.Add("module m\nnets 2\ninput a 1\ncell INV 2 1\noutput y 2\nendmodule\n")
	f.Add("cell AND2")
	f.Add("module m\nnets -3\nendmodule")
	f.Add("# only a comment")

	f.Fuzz(func(t *testing.T, src string) {
		m, err := ReadText(strings.NewReader(src))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := m.WriteText(&out); err != nil {
			t.Fatalf("re-serialise failed: %v", err)
		}
		again, err := ReadText(&out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(again.Cells) != len(m.Cells) || again.NumNets() != m.NumNets() {
			t.Fatalf("round trip changed structure")
		}
	})
}
