package netlist

import "testing"

func buildBig(n int) *Module {
	m := New("big")
	in := m.AddInput("x", 64)
	cur := in.Clone()
	for i := 0; i < n; i++ {
		next := make(Bus, 64)
		for j := range next {
			next[j] = m.Xor(cur[j], cur[(j+1)%64])
		}
		cur = next
	}
	m.AddOutput("y", cur)
	return m
}

func BenchmarkLevelize(b *testing.B) {
	m := buildBig(32) // 2048 cells
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Levelize(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInstantiate(b *testing.B) {
	sub := buildBig(8)
	for i := 0; i < b.N; i++ {
		top := New("top")
		x := top.AddInput("x", 64)
		outs := top.MustInstantiate(sub, "u0", map[string]Bus{"x": x})
		top.AddOutput("y", outs["y"])
	}
}
