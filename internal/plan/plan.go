// Package plan generates, prunes and sizes multi-fault injection campaigns.
//
// A k-fault plan enumerates every k-tuple of a design's declared fault
// points (the "fp."-tagged S-box input drivers core.Build marks), in a
// deterministic lexicographic order, so a campaign over the plan can be
// checkpointed and resumed by tuple index. Adaptive pruning cheapens the
// quadratic (and worse) blow-up: a tuple is skipped when one of its member
// sites is already known to be inert — a singleton location that cannot
// influence the outputs contributes nothing to any tuple containing it.
// Pruning is a per-tuple execution-time decision, never a re-numbering:
// tuple indices are stable whether or not the inert oracle improves between
// a checkpoint and its resume.
//
// The package also enumerates persistent-fault corruptions (the PFA model):
// every (table entry, XOR mask) pair of the cipher's S-box, which the fault
// engine applies through fault.PersistentFault.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/prove"
)

// Site is one candidate injection location: a declared fault point of the
// built design, with its tag parsed back into (branch, sbox, bit)
// provenance for filtering and reports.
type Site struct {
	Net    netlist.Net `json:"net"`
	Name   string      `json:"name"`
	Tag    string      `json:"tag"`
	Branch int         `json:"branch"`
	Sbox   int         `json:"sbox"`
	Bit    int         `json:"bit"`
}

// String renders the site the way reports name fault points.
func (s Site) String() string {
	return fmt.Sprintf("b%d.sbox%02d.b%d(net%d)", s.Branch, s.Sbox, s.Bit, s.Net)
}

// parseTag decodes "fp.b<branch>.sbox<NN>.b<bit>". It returns false for
// foreign tags rather than erroring: modules may carry other annotations.
func parseTag(tag string) (branch, sbox, bit int, ok bool) {
	rest, found := strings.CutPrefix(tag, prove.TagPrefix)
	if !found {
		return 0, 0, 0, false
	}
	if n, err := fmt.Sscanf(rest, "b%d.sbox%d.b%d", &branch, &sbox, &bit); err != nil || n != 3 {
		return 0, 0, 0, false
	}
	return branch, sbox, bit, true
}

// Sites collects the design's declared fault points in cell order — the
// same order prove.TaggedLocations reports them, so plan indices, prover
// reports and lint findings all name locations consistently.
func Sites(d *core.Design) []Site {
	var sites []Site
	for _, loc := range prove.TaggedLocations(d.Mod) {
		b, s, bit, ok := parseTag(loc.Tag)
		if !ok {
			continue
		}
		sites = append(sites, Site{Net: loc.Net, Name: loc.Name, Tag: loc.Tag, Branch: b, Sbox: s, Bit: bit})
	}
	return sites
}

// Request configures k-fault plan generation.
type Request struct {
	// K is the tuple arity; 1 <= K <= len(sites) after filtering.
	K int
	// Sboxes, when non-empty, keeps only sites in the listed S-box columns
	// (all branches) — the standard way to keep C(n, k) small.
	Sboxes []int
	// Cone, when non-zero, keeps only sites inside the forward
	// (observability) cone of that net: the tuples then model an adversary
	// whose faults all interact with one chosen signal.
	Cone netlist.Net
	// MaxTuples, when positive, truncates enumeration after that many
	// tuples; Plan.Truncated records that the cut happened.
	MaxTuples int
}

// Plan is a generated k-fault campaign plan.
type Plan struct {
	// Sites are the filtered candidate locations; Tuples index into it.
	Sites []Site
	K     int
	// Tuples lists the k-combinations in lexicographic order over site
	// indices. The order is the plan's checkpoint contract: a resumed
	// campaign continues at the recorded tuple index.
	Tuples [][]int
	// Truncated reports that MaxTuples cut the enumeration short.
	Truncated bool
}

// New generates the plan for a built design.
func New(d *core.Design, req Request) (*Plan, error) {
	sites := Sites(d)
	if len(req.Sboxes) > 0 {
		keep := make(map[int]bool, len(req.Sboxes))
		for _, s := range req.Sboxes {
			keep[s] = true
		}
		sites = filterSites(sites, func(s Site) bool { return keep[s.Sbox] })
	}
	if req.Cone != 0 {
		idx := fault.NewReachabilityIndex(d.Mod)
		in := make(map[netlist.Net]bool)
		for _, n := range idx.Cone(req.Cone) {
			in[n] = true
		}
		sites = filterSites(sites, func(s Site) bool { return in[s.Net] })
	}
	if req.K < 1 {
		return nil, fmt.Errorf("plan: tuple arity %d must be at least 1", req.K)
	}
	if req.K > len(sites) {
		return nil, fmt.Errorf("plan: arity %d exceeds the %d candidate sites", req.K, len(sites))
	}
	tuples, truncated := Combinations(len(sites), req.K, req.MaxTuples)
	met.Load().countTuples(len(tuples))
	return &Plan{Sites: sites, K: req.K, Tuples: tuples, Truncated: truncated}, nil
}

func filterSites(sites []Site, keep func(Site) bool) []Site {
	out := sites[:0]
	for _, s := range sites {
		if keep(s) {
			out = append(out, s)
		}
	}
	return out
}

// Combinations enumerates the k-combinations of {0..n-1} in lexicographic
// order, truncating after max tuples when max > 0. It is the plan's
// deterministic core, standalone so the fuzz harness can cross-check it
// against brute force on arbitrary (n, k).
func Combinations(n, k, max int) (tuples [][]int, truncated bool) {
	if k < 1 || k > n {
		return nil, false
	}
	cur := make([]int, k)
	for i := range cur {
		cur[i] = i
	}
	for {
		if max > 0 && len(tuples) == max {
			return tuples, true
		}
		tuples = append(tuples, append([]int(nil), cur...))
		// Advance: find the rightmost slot that can still move up.
		i := k - 1
		for i >= 0 && cur[i] == n-k+i {
			i--
		}
		if i < 0 {
			return tuples, false
		}
		cur[i]++
		for j := i + 1; j < k; j++ {
			cur[j] = cur[j-1] + 1
		}
	}
}

// NumTuples returns C(n, k), saturating at maxInt — plans are sized before
// enumeration so a runaway request can be rejected instead of allocated.
func NumTuples(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	const maxInt = int(^uint(0) >> 1)
	r := 1
	for i := 1; i <= k; i++ {
		if r > maxInt/(n-k+i) {
			return maxInt
		}
		r = r * (n - k + i) / i
	}
	return r
}

// PruneIndex decides whether a tuple is skippable: it returns the position
// of the first member site the inert oracle rules out, or -1 when the tuple
// must be executed. A site is inert when its singleton campaign is already
// known unable to influence the outputs — formally (a prover independence
// verdict) or empirically (a cached all-ineffective singleton tally) — so
// any tuple containing it degenerates to a smaller tuple already covered by
// the plan's lower arities.
func PruneIndex(tuple []int, inert func(site int) bool) int {
	if inert == nil {
		return -1
	}
	for i, s := range tuple {
		if inert(s) {
			met.Load().countPruned(1)
			return i
		}
	}
	return -1
}

// Faults materialises one tuple as the fault engine's injection set: the
// same model and activity cycle at every member site.
func (p *Plan) Faults(tuple []int, model fault.Model, cycle int) []fault.Fault {
	faults := make([]fault.Fault, 0, len(tuple))
	for _, s := range tuple {
		faults = append(faults, fault.At(p.Sites[s].Net, model, cycle))
	}
	return faults
}

// Corruption is one persistent-fault plan entry (see fault.PersistentFault).
type Corruption struct {
	Entry int    `json:"entry"`
	Mask  uint64 `json:"mask"`
}

// PersistentPlan enumerates S-box corruptions for the PFA model: every
// (entry, non-zero mask) pair of a 2^sboxBits-entry table, entry-major then
// mask-ascending — 2^n x (2^n - 1) corruptions. entries, when non-empty,
// restricts the table rows. max > 0 truncates like Combinations.
func PersistentPlan(sboxBits int, entries []int, max int) (cs []Corruption, truncated bool, err error) {
	if sboxBits < 1 || sboxBits > 16 {
		return nil, false, fmt.Errorf("plan: S-box width %d out of range", sboxBits)
	}
	size := 1 << sboxBits
	if len(entries) == 0 {
		entries = make([]int, size)
		for i := range entries {
			entries[i] = i
		}
	}
	for _, e := range entries {
		if e < 0 || e >= size {
			return nil, false, fmt.Errorf("plan: entry %d outside the %d-entry S-box", e, size)
		}
		for mask := uint64(1); mask < uint64(size); mask++ {
			if max > 0 && len(cs) == max {
				met.Load().countTuples(len(cs))
				return cs, true, nil
			}
			cs = append(cs, Corruption{Entry: e, Mask: mask})
		}
	}
	met.Load().countTuples(len(cs))
	return cs, false, nil
}
