package plan

import (
	"math/bits"
	"sort"
	"testing"
)

// FuzzCombinationsPruned cross-checks the planner's adaptively pruned
// enumeration against brute force: for arbitrary small (n, k) and an
// arbitrary inert-site mask, the tuples that survive PruneIndex must be
// exactly the size-k subsets avoiding every inert site, in lexicographic
// order — and pruning must never renumber, so the survivors are a
// subsequence of the full enumeration. This is the resume-safety contract:
// an inert oracle that improves between a checkpoint and its resume changes
// which tuples run, never which index names which tuple.
func FuzzCombinationsPruned(f *testing.F) {
	f.Add(uint8(8), uint8(2), uint16(0b101), uint8(0))
	f.Add(uint8(12), uint8(3), uint16(0), uint8(0))
	f.Add(uint8(5), uint8(5), uint16(0b11111), uint8(0))
	f.Add(uint8(1), uint8(1), uint16(0), uint8(1))
	f.Add(uint8(10), uint8(2), uint16(0xFFFF), uint8(7))
	f.Fuzz(func(t *testing.T, nRaw, kRaw uint8, inertMask uint16, maxRaw uint8) {
		n := int(nRaw % 13) // keep 2^n brute force cheap
		k := int(kRaw%13) + 1
		max := int(maxRaw)
		inert := func(site int) bool { return inertMask&(1<<site) != 0 }

		tuples, truncated := Combinations(n, k, max)
		if k > n {
			if tuples != nil || truncated {
				t.Fatalf("k=%d > n=%d must yield nothing, got %d tuples", k, n, len(tuples))
			}
			return
		}
		if want := NumTuples(n, k); !truncated && len(tuples) != want {
			t.Fatalf("C(%d,%d): got %d tuples, want %d", n, k, len(tuples), want)
		}
		if truncated && (max <= 0 || len(tuples) != max) {
			t.Fatalf("truncated enumeration returned %d tuples with max=%d", len(tuples), max)
		}

		// Shape and order of the full enumeration.
		for i, tup := range tuples {
			if len(tup) != k {
				t.Fatalf("tuple %d has arity %d", i, len(tup))
			}
			for j := 0; j < k; j++ {
				if tup[j] < 0 || tup[j] >= n || (j > 0 && tup[j] <= tup[j-1]) {
					t.Fatalf("tuple %d not strictly increasing in range: %v", i, tup)
				}
			}
			if i > 0 && !lexLess(tuples[i-1], tup) {
				t.Fatalf("enumeration not lexicographic at %d: %v then %v", i, tuples[i-1], tup)
			}
		}

		// Pruned survivors vs independent brute force over bitmasks.
		var got [][]int
		for _, tup := range tuples {
			if PruneIndex(tup, inert) < 0 {
				got = append(got, tup)
			}
		}
		var want [][]int
		for mask := 0; mask < 1<<n; mask++ {
			if bits.OnesCount(uint(mask)) != k || uint16(mask)&inertMask != 0 {
				continue
			}
			var tup []int
			for s := 0; s < n; s++ {
				if mask&(1<<s) != 0 {
					tup = append(tup, s)
				}
			}
			want = append(want, tup)
		}
		sort.Slice(want, func(i, j int) bool { return lexLess(want[i], want[j]) })
		if truncated {
			// A truncated plan's survivors are a prefix of the full answer.
			if len(got) > len(want) {
				t.Fatalf("truncated plan has %d survivors, full answer only %d", len(got), len(want))
			}
			want = want[:len(got)]
		}
		if len(got) != len(want) {
			t.Fatalf("pruned enumeration kept %d tuples, brute force says %d (n=%d k=%d inert=%b)",
				len(got), len(want), n, k, inertMask)
		}
		for i := range want {
			if !equalTuple(got[i], want[i]) {
				t.Fatalf("survivor %d = %v, brute force says %v", i, got[i], want[i])
			}
		}
	})
}

func lexLess(a, b []int) bool {
	for i := range a {
		if i >= len(b) || a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			return true
		}
	}
	return len(a) < len(b)
}

func equalTuple(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
