package plan

import (
	"strings"
	"testing"

	"repro/internal/cipher/present"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/synth"
)

func buildDesign(t *testing.T, scheme core.Scheme) *core.Design {
	t.Helper()
	d, err := core.Build(present.Spec(), core.Options{
		Scheme: scheme, Entropy: core.EntropyPrime, Engine: synth.EngineANF,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSitesParseDeclaredFaultPoints(t *testing.T) {
	d := buildDesign(t, core.SchemeThreeInOne)
	sites := Sites(d)
	// Two branches x 16 S-boxes x 4 bits for protected PRESENT-80.
	if len(sites) != 2*16*4 {
		t.Fatalf("got %d sites, want 128", len(sites))
	}
	seen := map[[3]int]bool{}
	for _, s := range sites {
		if s.Branch < 0 || s.Branch > 1 || s.Sbox < 0 || s.Sbox > 15 || s.Bit < 0 || s.Bit > 3 {
			t.Fatalf("site provenance out of range: %+v", s)
		}
		key := [3]int{s.Branch, s.Sbox, s.Bit}
		if seen[key] {
			t.Fatalf("duplicate site %v", key)
		}
		seen[key] = true
		if want := d.SboxInputNet(core.Branch(s.Branch), s.Sbox, s.Bit); want != s.Net {
			t.Fatalf("site %v net %d, design says %d", key, s.Net, want)
		}
	}
}

func TestSitesCoverCorrectingThirdBranch(t *testing.T) {
	d := buildDesign(t, core.SchemeCorrect)
	sites := Sites(d)
	if len(sites) != 3*16*4 {
		t.Fatalf("got %d sites, want 192", len(sites))
	}
}

func TestCombinationsLexicographic(t *testing.T) {
	got, trunc := Combinations(4, 2, 0)
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if trunc || len(got) != len(want) {
		t.Fatalf("got %v (truncated=%v)", got, trunc)
	}
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("tuple %d = %v, want %v", i, got[i], want[i])
		}
	}
	if head, trunc := Combinations(4, 2, 3); !trunc || len(head) != 3 {
		t.Fatalf("MaxTuples not honoured: %v truncated=%v", head, trunc)
	}
	if all, trunc := Combinations(3, 3, 0); trunc || len(all) != 1 {
		t.Fatalf("C(3,3): %v", all)
	}
	if none, _ := Combinations(2, 3, 0); none != nil {
		t.Fatalf("k > n must yield nothing, got %v", none)
	}
}

func TestNumTuples(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{8, 2, 28}, {128, 2, 8128}, {5, 0, 1}, {5, 5, 1}, {5, 6, 0}, {52, 5, 2598960},
	}
	for _, c := range cases {
		if got := NumTuples(c.n, c.k); got != c.want {
			t.Fatalf("NumTuples(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
	const maxInt = int(^uint(0) >> 1)
	if got := NumTuples(1000, 500); got != maxInt {
		t.Fatalf("expected saturation, got %d", got)
	}
}

func TestNewFiltersAndPlans(t *testing.T) {
	d := buildDesign(t, core.SchemeThreeInOne)
	p, err := New(d, Request{K: 2, Sboxes: []int{13}})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Sites) != 8 {
		t.Fatalf("S-box filter kept %d sites, want 8", len(p.Sites))
	}
	if len(p.Tuples) != 28 || p.Truncated {
		t.Fatalf("got %d tuples (truncated=%v), want 28", len(p.Tuples), p.Truncated)
	}
	faults := p.Faults(p.Tuples[0], 0, d.LastRoundCycle())
	if len(faults) != 2 || faults[0].Net == faults[1].Net {
		t.Fatalf("tuple materialised badly: %+v", faults)
	}

	if _, err := New(d, Request{K: 0}); err == nil {
		t.Fatal("K=0 must error")
	}
	if _, err := New(d, Request{K: 9, Sboxes: []int{13}}); err == nil {
		t.Fatal("arity beyond site count must error")
	}
}

func TestConeRestriction(t *testing.T) {
	d := buildDesign(t, core.SchemeThreeInOne)
	all := Sites(d)
	p, err := New(d, Request{K: 1, Cone: all[0].Net})
	if err != nil {
		t.Fatal(err)
	}
	// The root site itself is always inside its own cone.
	found := false
	for _, s := range p.Sites {
		if s.Net == all[0].Net {
			found = true
		}
	}
	if !found {
		t.Fatal("cone filter dropped its own root site")
	}
	if len(p.Sites) > len(all) {
		t.Fatalf("cone filter grew the site set: %d > %d", len(p.Sites), len(all))
	}
}

func TestPruneIndex(t *testing.T) {
	inert := func(s int) bool { return s == 3 }
	if got := PruneIndex([]int{0, 1}, inert); got != -1 {
		t.Fatalf("clean tuple pruned at %d", got)
	}
	if got := PruneIndex([]int{1, 3}, inert); got != 1 {
		t.Fatalf("inert member not found: %d", got)
	}
	if got := PruneIndex([]int{0, 2}, nil); got != -1 {
		t.Fatalf("nil oracle must not prune, got %d", got)
	}
}

func TestPersistentPlan(t *testing.T) {
	cs, trunc, err := PersistentPlan(4, nil, 0)
	if err != nil || trunc {
		t.Fatalf("err=%v trunc=%v", err, trunc)
	}
	if len(cs) != 16*15 {
		t.Fatalf("got %d corruptions, want 240", len(cs))
	}
	one, _, err := PersistentPlan(4, []int{5}, 0)
	if err != nil || len(one) != 15 {
		t.Fatalf("entry filter: %d corruptions, err=%v", len(one), err)
	}
	for _, c := range one {
		if c.Entry != 5 || c.Mask == 0 || c.Mask > 15 {
			t.Fatalf("bad corruption %+v", c)
		}
	}
	if head, trunc, _ := PersistentPlan(4, nil, 7); !trunc || len(head) != 7 {
		t.Fatalf("truncation: %d trunc=%v", len(head), trunc)
	}
	if _, _, err := PersistentPlan(4, []int{16}, 0); err == nil {
		t.Fatal("out-of-range entry must error")
	}
	if _, _, err := PersistentPlan(0, nil, 0); err == nil {
		t.Fatal("zero-width S-box must error")
	}
}

func TestPlanMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	EnableObservability(reg)
	defer EnableObservability(nil)

	d := buildDesign(t, core.SchemeThreeInOne)
	p, err := New(d, Request{K: 2, Sboxes: []int{13}})
	if err != nil {
		t.Fatal(err)
	}
	pruned := 0
	for _, tup := range p.Tuples {
		if PruneIndex(tup, func(s int) bool { return s == 0 }) >= 0 {
			pruned++
		}
	}
	if pruned != 7 {
		t.Fatalf("expected 7 tuples containing site 0, got %d", pruned)
	}
	var dump strings.Builder
	if err := reg.WritePrometheus(&dump); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"scone_plan_tuples_total 28", "scone_plan_pruned_total 7"} {
		if !strings.Contains(dump.String(), want) {
			t.Fatalf("metric %q missing from:\n%s", want, dump.String())
		}
	}
}
