package plan

import (
	"sync/atomic"

	"repro/internal/obs"
)

// metrics is the planner's instrument set, swapped in atomically by
// EnableObservability like the fault engine's.
type metrics struct {
	tuples *obs.Counter
	pruned *obs.Counter
}

var met atomic.Pointer[metrics]

// EnableObservability registers the planner's metrics on reg and starts
// recording into them. Passing nil reverts to the free no-op default.
func EnableObservability(reg *obs.Registry) {
	if reg == nil {
		met.Store(nil)
		return
	}
	met.Store(&metrics{
		tuples: reg.NewCounter("scone_plan_tuples_total", "Fault tuples enumerated into campaign plans"),
		pruned: reg.NewCounter("scone_plan_pruned_total", "Planned tuples skipped because a member site is known inert"),
	})
}

func (m *metrics) countTuples(n int) {
	if m == nil {
		return
	}
	m.tuples.Add(int64(n))
}

func (m *metrics) countPruned(n int) {
	if m == nil {
		return
	}
	m.pruned.Add(int64(n))
}
