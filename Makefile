# Development targets; CI (.github/workflows/ci.yml) runs the same steps.

GO ?= go

.PHONY: all build test race bench bench-full bench-smoke fmt fmt-check vet lint sconelint fuzz serve e2e e2e-dist e2e-store e2e-prove e2e-multifault e2e-leakage ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Campaign benchmark suite: PRESENT-80 across all three entropy variants
# plus the k=2 multi-fault plan sweep and the engine-configuration scaling
# matrix (lane widths x workers x batch sizes), written to BENCH_PR10.json
# (runs/sec, ns/eval, allocs). CI uploads the report as an artifact so the
# perf trajectory is tracked per commit.
bench:
	$(GO) run ./cmd/sconebench -short

# Full go-test benchmark run (slow; one benchmark per paper table/figure
# plus the raw gate-eval throughput benchmarks).
bench-full:
	$(GO) test -run=NONE -bench=. -benchmem ./...

# One iteration of every benchmark — proves they still compile and run.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	$(GO) vet ./...

# Custom vet passes (internal/vetkit): norand, cachedcompile, ctxexecute,
# obsnames.
lint: vet
	$(GO) run ./cmd/sconevet .

# Run the fault-campaign daemon locally with durable state. Submit work
# with cmd/sconectl or plain curl; SIGINT drains gracefully (running
# campaigns checkpoint and resume on the next start).
SCONED_STATE ?= .sconed-state
serve:
	$(GO) run ./cmd/sconed -addr :8344 -state $(SCONED_STATE)

# Service end-to-end suite under the race detector: HTTP submission,
# NDJSON streaming, bit-identical results vs direct Campaign.Execute,
# and graceful-drain + checkpoint/resume.
e2e:
	$(GO) test -race -count=1 ./internal/service/... ./cmd/sconed/... ./cmd/sconectl/...

# Distributed campaign fabric under the race detector: coordinator lease
# table, worker kill + lease reassignment with bit-identical merged results,
# the /v1 worker protocol round trip, and sconed's worker mode.
e2e-dist:
	$(GO) test -race -count=1 \
		-run 'TestCoordinator|TestE2EDistributed|TestDistEndpoints|TestSubmitRetr|TestDaemonWorker|TestWorkersLeasesAndTopFleet' \
		./internal/service/... ./cmd/sconed/... ./cmd/sconectl/...

# Content-addressed result store under the race detector: resubmitting an
# identical campaign after a daemon restart must simulate zero batches
# (every batch a scone_store_hits_total hit) with bit-identical results for
# all three entropy variants, extended campaigns must splice cached and
# fresh batches bit-identically, and the distributed coordinator must grant
# no leases for fully cached work.
e2e-store:
	$(GO) test -race -count=1 -run 'TestE2EStore|TestStore|FuzzCampaignKey|FuzzBatchRecord|FuzzLogRecovery' \
		./internal/service/... ./internal/store/...

# Formal prover under the race detector: every single-fault location of
# the protected PRESENT-80 core proves flag/key-independent, seeded bias
# fixtures produce dependent verdicts with witnesses, and a daemon drained
# mid-proof resumes on restart without re-proving a completed
# (location, model) pair — measured through scone_prove_locations_total.
e2e-prove:
	$(GO) test -race -count=1 \
		-run 'TestE2EProve|TestProve|TestProtectedPresent80Independent' \
		./internal/service/... ./internal/prove/... ./cmd/sconectl/...

# Multi-fault planning subsystem under the race detector: the multifault
# job kind must produce bit-identical sweep results in-process, through
# the distributed lease fabric and replayed from the result store (both
# kfault and persistent modes), and a daemon drained mid-sweep must
# resume at the recorded placement index with a stitched result equal to
# an uninterrupted run.
e2e-multifault:
	$(GO) test -race -count=1 \
		-run 'TestE2EMultiFault|TestMultiFault' \
		./internal/service/... ./internal/plan/...

# Leakage evaluation under the race detector: the TVLA evaluator's
# determinism and resume bit-identity, the masked-vs-unmasked verdict
# separation, and a daemon drained mid-evaluation must resume on restart
# completing exactly the remaining trace batches — measured through
# scone_leakage_batches_total — with t-statistics bit-identical to an
# uninterrupted run.
e2e-leakage:
	$(GO) test -race -count=1 \
		-run 'TestE2ELeakage|TestLeakage|TestFacadeLeakage|TestTTest' \
		./internal/service/... ./internal/leakage/... ./internal/stats/... .

# Static countermeasure audit: the synthesised PRESENT-80 three-in-one
# core must lint clean for every entropy variant, and the unprotected
# baseline must be flagged.
sconelint:
	$(GO) run ./cmd/sconelint -summary -cipher present80 -scheme three-in-one -entropy prime
	$(GO) run ./cmd/sconelint -summary -cipher present80 -scheme three-in-one -entropy per-round
	$(GO) run ./cmd/sconelint -summary -cipher present80 -scheme three-in-one -entropy per-sbox
	@if $(GO) run ./cmd/sconelint -rules lambda-cone -scheme unprotected >/dev/null 2>&1; then \
		echo "sconelint failed to flag the unprotected core" >&2; exit 1; \
	else echo "unprotected core correctly flagged"; fi

# Replay the checked-in fuzz seed corpora (no open-ended fuzzing).
fuzz:
	$(GO) test -run=Fuzz ./internal/netlist ./internal/lint ./internal/store ./internal/prove ./internal/plan

ci: fmt-check build lint test race bench-smoke fuzz sconelint
