# Development targets; CI (.github/workflows/ci.yml) runs the same steps.

GO ?= go

.PHONY: all build test race bench bench-smoke fmt fmt-check vet fuzz ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark run (slow; one benchmark per paper table/figure plus the
# raw gate-eval throughput benchmarks).
bench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

# One iteration of every benchmark — proves they still compile and run.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	$(GO) vet ./...

# Replay the checked-in fuzz seed corpus (no open-ended fuzzing).
fuzz:
	$(GO) test -run=Fuzz ./internal/netlist

ci: fmt-check build vet test race bench-smoke fuzz
