// Package scone is the public API of this reproduction of "Feeding Three
// Birds With One Scone: A Generic Duplication Based Countermeasure To
// Fault Attacks" (Baksi, Bhasin, Breier, Chattopadhyay, Kumar — DATE
// 2021).
//
// The library lets a user:
//
//   - describe an SPN block cipher (or use the bundled PRESENT-80 and
//     GIFT-64 descriptions),
//   - build gate-level cores protected with naive duplication, the ACISP
//     2020 randomised duplication, or the paper's three-in-one
//     countermeasure in its three entropy variants,
//   - simulate them (64 runs in parallel) and inject stuck-at / bit-flip
//     faults at any net and clock cycle,
//   - run the DFA / identical-fault DFA / SIFA / FTA attacks against each
//     design, and
//   - price every design in gate equivalents against a Nangate-45-like
//     standard-cell library.
//
// See the examples/ directory for runnable walkthroughs and
// EXPERIMENTS.md for the paper-versus-measured record of every table and
// figure.
package scone
