package scone

import (
	"context"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// facadeSymbols is the curated public surface: every internal symbol
// intended to be public must be reachable under one of these names. The
// parity test fails when a facade rename or deletion silently drops one.
var facadeSymbols = []string{
	// Cipher description layer.
	"Spec", "KeyState", "PresentSpec", "GiftSpec", "Scone64Spec",
	// Countermeasure construction layer.
	"Scheme", "Entropy", "Options", "Design", "Runner", "LambdaFunc",
	"Branch", "SoftwareCM",
	"SchemeUnprotected", "SchemeNaiveDup", "SchemeACISP", "SchemeThreeInOne",
	"SchemeCorrect", "SchemeMaskedDup",
	"SchemeInfo", "Schemes", "ParseScheme", "SchemeWire",
	"EntropyPrime", "EntropyPerRound", "EntropyPerSbox",
	"BranchActual", "BranchRedundant", "BranchRedundant2",
	"EngineANF", "EngineBDD",
	"Build", "MustBuild", "NewRunner", "LambdaConst",
	// Simulation layer.
	"BatchLanes", "EngineConfig", "DefaultEngineConfig",
	// Fault-injection layer.
	"Model", "Fault", "Campaign", "CampaignResult", "Run", "Net", "Injector",
	"StuckAt0", "StuckAt1", "BitFlip", "PersistentFault",
	"FaultAt", "NewInjector", "BoundCampaign", "NewCampaign",
	// Multi-fault planning layer.
	"FaultPlan", "PlanRequest", "PlanSite", "SboxCorruption",
	"Plan", "PlanSites", "PersistentCorruptions",
	// Attack layer.
	"AttackTarget", "AttackResult", "DFAConfig", "SIFAConfig", "SIFAResult",
	"IFAConfig", "IFAResult", "SFAConfig", "FTAConfig", "FTAResult",
	"NewAttackTarget", "RunDFA", "RunSIFA", "RunFTA", "RunIFA", "RunSFA",
	// Area layer.
	"CellLibrary", "AreaReport", "Nangate45", "Area",
	// Service layer.
	"ServiceConfig", "Service", "JobRequest", "JobStatus", "JobKind",
	"JobState", "JobEvent",
	"JobCampaign", "JobDFA", "JobSIFA", "JobFTA", "JobArea", "JobLint",
	"JobProve", "JobMultiFault", "JobLeakage",
	"DesignSpec", "MultiFaultSpec", "MultiFaultResult", "TupleResult", "U64",
	"LeakageSpec", "LeakageResult",
	"JobQueued", "JobRunning", "JobDone", "JobFailed", "JobCanceled",
	"NewService", "MultiFault", "Leakage",
	// Distributed execution layer.
	"DistConfig", "WorkerState", "LeaseState", "WorkerInfo", "LeaseInfo",
	"LeaseGrant", "CampaignWorker", "CampaignWorkerConfig",
	"WorkerActive", "WorkerLost", "WorkerLeft",
	"LeasePending", "LeaseActive", "LeaseDone",
	"NewCampaignWorker",
	// Observability layer.
	"Registry", "Counter", "Gauge", "Histogram", "Span",
	"NewRegistry", "EnableObservability",
	// Randomness layer.
	"EntropySource", "TRNG", "NewTRNG", "NewDeterministicSource",
}

// parseFacade parses the non-test files of the root package.
func parseFacade(t *testing.T) []*ast.File {
	t.Helper()
	paths, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, p := range paths {
		if strings.HasSuffix(p, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	return files
}

// facadeDecls returns every exported top-level name and whether it (or its
// declaration group) carries a doc comment.
func facadeDecls(files []*ast.File) map[string]bool {
	documented := map[string]bool{}
	for _, f := range files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil && d.Name.IsExported() {
					documented[d.Name.Name] = d.Doc != nil
				}
			case *ast.GenDecl:
				for _, s := range d.Specs {
					switch s := s.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() {
							documented[s.Name.Name] = s.Doc != nil || d.Doc != nil
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() {
								documented[n.Name] = s.Doc != nil || d.Doc != nil
							}
						}
					}
				}
			}
		}
	}
	return documented
}

// Every symbol on the curated list must exist, and every exported facade
// declaration must carry a doc comment.
func TestFacadeParity(t *testing.T) {
	documented := facadeDecls(parseFacade(t))
	for _, name := range facadeSymbols {
		if _, ok := documented[name]; !ok {
			t.Errorf("facade symbol %s is missing from the root package", name)
		}
	}
	for name, hasDoc := range documented {
		if !hasDoc {
			t.Errorf("exported facade symbol %s has no doc comment", name)
		}
	}
}

// Methods on facade-declared types must be documented too (the parity of
// godoc completeness; aliased types document themselves at the source).
func TestFacadeMethodsDocumented(t *testing.T) {
	for _, f := range parseFacade(t) {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !fd.Name.IsExported() {
				continue
			}
			if fd.Doc == nil {
				t.Errorf("exported method %s has no doc comment", fd.Name.Name)
			}
		}
	}
}

// The in-process multifault sweep: plans, executes every placement and
// aggregates, with nil-context rejection up front.
func TestFacadeMultiFault(t *testing.T) {
	//lint:ignore SA1012 nil-context rejection is exactly what is under test
	if _, err := MultiFault(nil, DesignSpec{}, MultiFaultSpec{}); err == nil {
		t.Error("nil context accepted")
	}
	res, err := MultiFault(context.Background(),
		DesignSpec{Cipher: "present80", Scheme: "three-in-one", Entropy: "prime"},
		MultiFaultSpec{
			K: 2, Sboxes: []int{13}, MaxTuples: 3, RunsPerTuple: 128,
			Seed: 7, Key: [2]U64{0x0123456789ABCDEF, 0x8421},
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Planned != 3 || res.Executed != 3 || !res.Truncated || res.Totals.Total != 3*128 {
		t.Fatalf("sweep result %+v", res)
	}
}

// The in-process TVLA evaluation: collects traces, scores the t-test and
// returns the verdict, with nil-context rejection up front.
func TestFacadeLeakage(t *testing.T) {
	//lint:ignore SA1012 nil-context rejection is exactly what is under test
	if _, err := Leakage(nil, DesignSpec{}, LeakageSpec{}); err == nil {
		t.Error("nil context accepted")
	}
	res, err := Leakage(context.Background(),
		DesignSpec{Cipher: "present80", Scheme: "three-in-one", Entropy: "prime"},
		LeakageSpec{
			Pairs: 192, Seed: 0x17, Key: [2]U64{0x0123456789ABCDEF, 0x8421},
			FixedPT: 0x0123456789ABCDEF,
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fixed != 192 || res.Random != 192 || res.Discarded != 0 {
		t.Fatalf("trace counts %+v", res)
	}
	if !res.Leaks {
		t.Fatalf("unmasked three-in-one passed TVLA (max |t| = %.1f)", res.MaxAbsT)
	}
}

// The context-first campaign constructor: validates inputs, runs under the
// bound context, and a pre-cancelled context stops before any batch.
func TestFacadeNewCampaign(t *testing.T) {
	d := MustBuild(PresentSpec(), Options{
		Scheme: SchemeThreeInOne, Entropy: EntropyPrime, Engine: EngineANF,
	})
	key := KeyState{0x0123456789ABCDEF, 0x8421}
	flt := FaultAt(d.SboxInputNet(BranchActual, 13, 2), StuckAt0, d.LastRoundCycle())

	//lint:ignore SA1012 nil-context rejection is exactly what is under test
	if _, err := NewCampaign(nil, d, key, 128, 1, flt); err == nil {
		t.Error("nil context accepted")
	}
	if _, err := NewCampaign(context.Background(), nil, key, 128, 1, flt); err == nil {
		t.Error("nil design accepted")
	}
	if _, err := NewCampaign(context.Background(), d, key, 0, 1, flt); err == nil {
		t.Error("zero run count accepted")
	}

	c, err := NewCampaign(context.Background(), d, key, 192, 0x5C09E2021, flt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 192 || res.Ineffective()+res.Detected()+res.Effective() != 192 {
		t.Fatalf("campaign result %+v", res)
	}

	// The engine configuration is validated and never changes results.
	cw, err := NewCampaign(context.Background(), d, key, 192, 0x5C09E2021, flt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cw.WithEngine(EngineConfig{LaneWords: 3}); err == nil {
		t.Error("invalid engine configuration accepted")
	}
	cw, err = cw.WithEngine(EngineConfig{LaneWords: 4, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	resW, err := cw.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if resW != res {
		t.Fatalf("wide engine result %+v differs from %+v", resW, res)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c2, err := NewCampaign(ctx, d, key, 192, 0x5C09E2021, flt)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := c2.Run(nil)
	if err == nil {
		t.Fatal("pre-cancelled campaign ran to completion")
	}
	if res2.Total != 0 {
		t.Fatalf("pre-cancelled campaign simulated %d runs", res2.Total)
	}
}
