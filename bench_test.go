package scone

// One benchmark per table and figure of the paper's evaluation section,
// plus the ablations DESIGN.md calls out and raw-throughput benchmarks of
// the substrates. `go test -bench=. -benchmem` regenerates every number
// EXPERIMENTS.md records (benchmarks use reduced run counts; the cmd/
// tools run the full 80k-run campaigns).

import (
	"runtime"
	"testing"

	"repro/internal/cipher/present"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/spn"
	"repro/internal/synth"
)

var benchKey = spn.KeyState{0x0123456789ABCDEF, 0x8421}

// --- Table I: the inverted gate duals (definitional sanity + throughput) --

func BenchmarkTableIInvertedGates(b *testing.B) {
	// Exhaustively re-verify Table I per iteration, then burn the duals
	// on wide words; failure panics the benchmark.
	var sink uint64
	for i := 0; i < b.N; i++ {
		for x0 := uint64(0); x0 < 2; x0++ {
			for x1 := uint64(0); x1 < 2; x1++ {
				if core.InvXOR(^x0, ^x1)&1 != ^(x0^x1)&1 {
					b.Fatal("Table I(a) violated")
				}
				if core.InvAND(^x0, ^x1)&1 != ^(x0&x1)&1 {
					b.Fatal("Table I(b) violated")
				}
			}
		}
		sink += core.InvXOR(uint64(i), sink) ^ core.InvAND(sink, uint64(i))
	}
	_ = sink
}

// --- Figure 4: SIFA bias campaign ----------------------------------------

func BenchmarkFig4SIFACampaign(b *testing.B) {
	cfg := experiments.DefaultConfig()
	cfg.Runs = 4096
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Naive.Biased || res.ThreeInOne.Biased {
			b.Fatalf("Figure 4 shape lost: naive biased=%v, ours biased=%v",
				res.Naive.Biased, res.ThreeInOne.Biased)
		}
	}
	b.ReportMetric(float64(2*cfg.Runs), "sim-runs/op")
}

// --- Figure 5: identical-fault DFA campaign -------------------------------

func BenchmarkFig5IdenticalDFACampaign(b *testing.B) {
	cfg := experiments.DefaultConfig()
	cfg.Runs = 4096
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Naive.Campaign.Effective() == 0 || res.ThreeInOne.Campaign.Effective() != 0 {
			b.Fatalf("Figure 5 shape lost: naive escapes=%d, ours escapes=%d",
				res.Naive.Campaign.Effective(), res.ThreeInOne.Campaign.Effective())
		}
	}
	b.ReportMetric(float64(2*cfg.Runs), "sim-runs/op")
}

// --- Table II: full-core area ---------------------------------------------

func BenchmarkTableIIArea(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t2 := experiments.RunTableII(synth.EngineANF)
		naive, ours := t2.Rows[0].Report, t2.Rows[1].Report
		if naive.Sequential != ours.Sequential {
			b.Fatalf("non-combinational GE must match: %v vs %v", naive.Sequential, ours.Sequential)
		}
		b.ReportMetric(t2.Rows[1].Ratio, "overhead-ratio")
	}
}

// --- Table III: duplicated S-box layer area --------------------------------

func BenchmarkTableIIIArea(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t3 := experiments.RunTableIII()
		for _, row := range t3.Rows {
			b.ReportMetric(row.Ratio, row.Cipher+"-ratio")
		}
	}
}

// --- Ablations --------------------------------------------------------------

func BenchmarkAblationEntropyVariants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunEntropyAblation()
		for _, row := range res.Rows {
			b.ReportMetric(row.Ratio, row.Variant.String()+"-"+row.Layout+"-ratio")
		}
	}
}

func BenchmarkAblationSynthesisEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunEngineAblation()
		for _, row := range res.Rows {
			b.ReportMetric(row.Merged, row.Cipher+"-"+row.Engine.String()+"-merged-GE")
		}
	}
}

func BenchmarkAblationMergedSbox(b *testing.B) {
	// Merged (n+1)-bit S-box versus the ACISP separate-pair layout:
	// the area the paper's third amendment trades for FTA resistance.
	lib := Nangate45()
	for i := 0; i < b.N; i++ {
		merged := core.MustBuild(present.Spec(), core.Options{
			Scheme: core.SchemeThreeInOne, Entropy: core.EntropyPrime,
			Engine: synth.EngineANF, Optimize: true,
		})
		separate := core.MustBuild(present.Spec(), core.Options{
			Scheme: core.SchemeThreeInOne, Entropy: core.EntropyPrime,
			Engine: synth.EngineANF, SeparateSbox: true, Optimize: true,
		})
		b.ReportMetric(lib.Area(merged.Mod).Total(), "merged-GE")
		b.ReportMetric(lib.Area(separate.Mod).Total(), "separate-GE")
	}
}

// --- Substrate throughput ----------------------------------------------------

func BenchmarkSoftwarePresentEncrypt(b *testing.B) {
	spec := present.Spec()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= spec.Encrypt(uint64(i), benchKey)
	}
	_ = sink
}

func BenchmarkSoftwareThreeInOneEncrypt(b *testing.B) {
	// The paper's remark: software cost is essentially 2x the cipher.
	cm := core.SoftwareCM{Spec: present.Spec(), Scheme: core.SchemeThreeInOne}
	var sink uint64
	for i := 0; i < b.N; i++ {
		ct, _ := cm.Encrypt(uint64(i), benchKey, uint64(i)&1, 0)
		sink ^= ct
	}
	_ = sink
}

func BenchmarkGateLevelEncryptBatch(b *testing.B) {
	d := core.MustBuild(present.Spec(), core.Options{
		Scheme: core.SchemeThreeInOne, Entropy: core.EntropyPrime, Engine: synth.EngineANF,
	})
	r, err := core.NewRunner(d)
	if err != nil {
		b.Fatal(err)
	}
	pts := make([]uint64, 64)
	lams := make([]uint64, 64)
	gen := rng.NewXoshiro(1)
	for i := range pts {
		pts[i] = gen.Uint64()
		lams[i] = gen.Bits(1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.EncryptBatch(pts, benchKey, nil, core.LambdaConst(lams))
	}
	b.ReportMetric(64, "encryptions/op")
}

// BenchmarkGateEvalCompiled measures raw compiled-instruction-stream
// gate-evaluation throughput on the PRESENT three-in-one core: one full
// combinational pass over the design per iteration, 64 lanes wide. The
// gate-lanes/sec metric is the simulator's headline number; compare with
// BenchmarkGateEvalInterpreted for the compiled-vs-interpreted speedup.
func BenchmarkGateEvalCompiled(b *testing.B) {
	benchGateEval(b, (*sim.Simulator).Eval)
}

// BenchmarkGateEvalInterpreted is the same pass through the retained
// reference interpreter (per-cell switch dispatch) — the pre-rewrite
// baseline the compiled stream is measured against.
func BenchmarkGateEvalInterpreted(b *testing.B) {
	benchGateEval(b, (*sim.Simulator).EvalReference)
}

func benchGateEval(b *testing.B, eval func(*sim.Simulator)) {
	d := core.MustBuild(present.Spec(), core.Options{
		Scheme: core.SchemeThreeInOne, Entropy: core.EntropyPrime, Engine: synth.EngineANF,
	})
	c, err := sim.CompileCached(d.Mod)
	if err != nil {
		b.Fatal(err)
	}
	s := c.NewSimulator()
	pts := make([]uint64, sim.Lanes)
	gen := rng.NewXoshiro(1)
	for i := range pts {
		pts[i] = gen.Uint64()
	}
	s.SetInput("pt", pts)
	s.SetInputBroadcast("key_lo", benchKey[0])
	s.SetInputBroadcast("load", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval(s)
	}
	gates := c.NumInstructions()
	b.ReportMetric(float64(gates), "gates/op")
	b.ReportMetric(float64(gates)*sim.Lanes*float64(b.N)/b.Elapsed().Seconds(), "gate-lanes/sec")
}

func BenchmarkFaultCampaignThroughput(b *testing.B) {
	d := core.MustBuild(present.Spec(), core.Options{
		Scheme: core.SchemeThreeInOne, Entropy: core.EntropyPrime, Engine: synth.EngineANF,
	})
	net := d.SboxInputNet(core.BranchActual, 13, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		camp := fault.Campaign{
			Design: d, Key: benchKey,
			Faults: []fault.Fault{fault.At(net, fault.StuckAt0, d.LastRoundCycle())},
			Runs:   2048, Seed: uint64(i + 1),
		}
		if _, err := camp.Execute(nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(2048, "sim-runs/op")
}

// TestCampaignAllocsPerRun pins the campaign hot path's allocation budget.
// The fresh-λ-per-cycle variants used to cost 0.8 allocs per run (per-batch
// generators and λ slices); the per-worker scratch engine must keep every
// entropy variant at effectively zero.
func TestCampaignAllocsPerRun(t *testing.T) {
	for _, tc := range []struct {
		name    string
		entropy core.Entropy
	}{
		{"prime", core.EntropyPrime},
		{"per-round", core.EntropyPerRound},
		{"per-sbox", core.EntropyPerSbox},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := core.MustBuild(present.Spec(), core.Options{
				Scheme: core.SchemeThreeInOne, Entropy: tc.entropy, Engine: synth.EngineANF,
			})
			net := d.SboxInputNet(core.BranchActual, 13, 2)
			const runs = 2048
			execute := func(seed uint64) {
				camp := fault.Campaign{
					Design: d, Key: benchKey,
					Faults: []fault.Fault{fault.At(net, fault.StuckAt0, d.LastRoundCycle())},
					Runs:   runs, Seed: seed,
					Engine: fault.EngineConfig{LaneWords: 1, Parallelism: 1},
				}
				if _, err := camp.Execute(nil); err != nil {
					t.Fatal(err)
				}
			}
			execute(1) // warm the compile cache
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			execute(2)
			runtime.ReadMemStats(&after)
			perRun := float64(after.Mallocs-before.Mallocs) / runs
			t.Logf("%s: %.3f allocs/run", tc.name, perRun)
			if perRun > 0.3 {
				t.Errorf("allocs/run = %.3f, want <= 0.3", perRun)
			}
		})
	}
}

func BenchmarkTRNGCorrectedBit(b *testing.B) {
	t := rng.NewRingOscillatorTRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= t.Bit()
	}
	_ = sink
}

func BenchmarkSboxSynthesisANF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.BuildSboxModules(present.Sbox, present.SboxBits, synth.EngineANF, true)
	}
}

func BenchmarkSboxSynthesisBDD8bit(b *testing.B) {
	tt := make([]uint64, 256)
	for i := range tt {
		tt[i] = uint64(i) ^ 0xA5 // cheap stand-in permutation table
	}
	for i := 0; i < b.N; i++ {
		core.BuildSboxModules(tt, 8, synth.EngineBDD, true)
	}
}
