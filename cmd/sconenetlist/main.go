// Command sconenetlist builds one protected core and inspects it: cell
// statistics, GE area, logic depth, and optional export in the scone
// netlist text format or Graphviz DOT.
//
// Usage:
//
//	sconenetlist -cipher present80 -scheme three-in-one -entropy prime [-optimize] [-format stats|text|dot]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cipher/gift"
	"repro/internal/cipher/present"
	"repro/internal/core"
	"repro/internal/spn"
	"repro/internal/stdcell"
	"repro/internal/synth"
)

func main() {
	cipher := flag.String("cipher", "present80", "cipher: present80 or gift64")
	scheme := flag.String("scheme", "three-in-one", "unprotected, naive, acisp, three-in-one")
	entropy := flag.String("entropy", "prime", "prime, per-round, per-sbox")
	engine := flag.String("engine", "anf", "S-box synthesis engine: anf or bdd")
	optimize := flag.Bool("optimize", false, "run the synthesis optimiser")
	separate := flag.Bool("separate-sbox", false, "use the ACISP separate-S-box layout")
	format := flag.String("format", "stats", "output: stats, text or dot")
	flag.Parse()

	var spec *spn.Spec
	switch *cipher {
	case "present80":
		spec = present.Spec()
	case "gift64":
		spec = gift.Spec()
	default:
		fail("unknown cipher %q", *cipher)
	}

	opts := core.Options{Optimize: *optimize, SeparateSbox: *separate}
	switch *scheme {
	case "unprotected":
		opts.Scheme = core.SchemeUnprotected
	case "naive":
		opts.Scheme = core.SchemeNaiveDup
	case "acisp":
		opts.Scheme = core.SchemeACISP
	case "three-in-one":
		opts.Scheme = core.SchemeThreeInOne
	default:
		fail("unknown scheme %q", *scheme)
	}
	switch *entropy {
	case "prime":
		opts.Entropy = core.EntropyPrime
	case "per-round":
		opts.Entropy = core.EntropyPerRound
	case "per-sbox":
		opts.Entropy = core.EntropyPerSbox
	default:
		fail("unknown entropy variant %q", *entropy)
	}
	switch *engine {
	case "anf":
		opts.Engine = synth.EngineANF
	case "bdd":
		opts.Engine = synth.EngineBDD
	default:
		fail("unknown engine %q", *engine)
	}

	d, err := core.Build(spec, opts)
	if err != nil {
		fail("build: %v", err)
	}

	switch *format {
	case "stats":
		fmt.Print(d.Mod.CollectStats())
		fmt.Println()
		fmt.Print(stdcell.Nangate45().Area(d.Mod))
	case "text":
		if err := d.Mod.WriteText(os.Stdout); err != nil {
			fail("write: %v", err)
		}
	case "dot":
		if err := d.Mod.WriteDOT(os.Stdout); err != nil {
			fail("write: %v", err)
		}
	default:
		fail("unknown format %q", *format)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sconenetlist: "+format+"\n", args...)
	os.Exit(2)
}
