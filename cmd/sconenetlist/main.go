// Command sconenetlist builds one protected core and inspects it: cell
// statistics, GE area, logic depth, and optional export in the scone
// netlist text format or Graphviz DOT.
//
// Usage:
//
//	sconenetlist -cipher present80 -scheme three-in-one -entropy prime [-optimize] [-format stats|text|dot]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cipher/gift"
	"repro/internal/cipher/present"
	"repro/internal/core"
	"repro/internal/spn"
	"repro/internal/stdcell"
	"repro/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "sconenetlist:", err)
		os.Exit(2)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sconenetlist", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cipher := fs.String("cipher", "present80", "cipher: present80 or gift64")
	scheme := fs.String("scheme", "three-in-one", "countermeasure scheme: "+core.SchemeVocabulary())
	entropy := fs.String("entropy", "prime", "prime, per-round, per-sbox")
	engine := fs.String("engine", "anf", "S-box synthesis engine: anf or bdd")
	optimize := fs.Bool("optimize", false, "run the synthesis optimiser")
	separate := fs.Bool("separate-sbox", false, "use the ACISP separate-S-box layout")
	format := fs.String("format", "stats", "output: stats, text or dot")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var spec *spn.Spec
	switch *cipher {
	case "present80":
		spec = present.Spec()
	case "gift64":
		spec = gift.Spec()
	default:
		return fmt.Errorf("unknown cipher %q", *cipher)
	}

	opts := core.Options{Optimize: *optimize, SeparateSbox: *separate}
	sch, err := core.ParseScheme(*scheme)
	if err != nil {
		return err
	}
	opts.Scheme = sch
	switch *entropy {
	case "prime":
		opts.Entropy = core.EntropyPrime
	case "per-round":
		opts.Entropy = core.EntropyPerRound
	case "per-sbox":
		opts.Entropy = core.EntropyPerSbox
	default:
		return fmt.Errorf("unknown entropy variant %q", *entropy)
	}
	switch *engine {
	case "anf":
		opts.Engine = synth.EngineANF
	case "bdd":
		opts.Engine = synth.EngineBDD
	default:
		return fmt.Errorf("unknown engine %q", *engine)
	}

	d, err := core.Build(spec, opts)
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}

	switch *format {
	case "stats":
		fmt.Fprint(stdout, d.Mod.CollectStats())
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, stdcell.Nangate45().Area(d.Mod))
	case "text":
		if err := d.Mod.WriteText(stdout); err != nil {
			return fmt.Errorf("write: %w", err)
		}
	case "dot":
		if err := d.Mod.WriteDOT(stdout); err != nil {
			return fmt.Errorf("write: %w", err)
		}
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	return nil
}
