package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunStats(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-scheme", "unprotected", "-format", "stats"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	if !strings.Contains(out.String(), "DFF") {
		t.Fatalf("expected cell statistics in output, got:\n%s", out.String())
	}
}

func TestRunTextExport(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-cipher", "gift64", "-scheme", "unprotected", "-format", "text"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	if out.Len() == 0 {
		t.Fatal("text export produced no output")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	for _, args := range [][]string{
		{"-cipher", "des"},
		{"-scheme", "quadruple"},
		{"-entropy", "none"},
		{"-engine", "abc"},
		{"-format", "verilog"},
		{"-bogus"},
	} {
		if err := run(args, &out, &errb); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}
