// Command sconeattack mounts the paper's three attack families against
// each protection scheme and prints the success/failure matrix — the
// executable form of the paper's Section IV-B security argument.
//
// Usage:
//
//	sconeattack [-attack dfa|identical|sifa|fta|all] [-key hex80]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/attack"
	"repro/internal/cipher/present"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/spn"
	"repro/internal/synth"
)

var deviceKey = spn.KeyState{0x0123456789ABCDEF, 0x8421}

func buildDesign(scheme core.Scheme, separate bool) *core.Design {
	return core.MustBuild(present.Spec(), core.Options{
		Scheme: scheme, Entropy: core.EntropyPrime,
		Engine: synth.EngineANF, SeparateSbox: separate,
	})
}

func newTarget(scheme core.Scheme) *attack.Target {
	t, err := attack.NewTarget(buildDesign(scheme, false), deviceKey, 0xD0D0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sconeattack:", err)
		os.Exit(1)
	}
	return t
}

func main() {
	which := flag.String("attack", "all", "attack to run: dfa, identical, sifa, ifa, fta or all")
	flag.Parse()

	run := func(name string) bool { return *which == name || *which == "all" }

	if run("dfa") {
		fmt.Println("=== Classic last-round DFA (single computation, bit-flip faults) ===")
		for _, s := range []core.Scheme{core.SchemeUnprotected, core.SchemeNaiveDup, core.SchemeThreeInOne} {
			res := attack.RunDFA(newTarget(s), attack.DefaultDFAConfig())
			fmt.Printf("  vs %-24s %s\n", s.String()+":", res)
		}
		fmt.Println()
	}

	if run("identical") {
		fmt.Println("=== Identical-fault DFA (FDTC 2016: same stuck-at in both computations) ===")
		for _, s := range []core.Scheme{core.SchemeNaiveDup, core.SchemeACISP, core.SchemeThreeInOne} {
			res := attack.RunDFA(newTarget(s), attack.IdenticalDFAConfig())
			fmt.Printf("  vs %-24s %s\n", s.String()+":", res)
		}
		cfg := attack.IdenticalDFAConfig()
		cfg.Model = fault.BitFlip
		res := attack.RunDFA(newTarget(core.SchemeThreeInOne), cfg)
		fmt.Printf("  vs %-24s %s\n", "three-in-one (identical bit-FLIP, the §IV-B-4 caveat):", res)
		fmt.Println()
	}

	if run("sifa") {
		fmt.Println("=== SIFA (stuck-at-0 at S-box 13 bit 2, ineffective-fault filtering) ===")
		for _, s := range []core.Scheme{core.SchemeNaiveDup, core.SchemeACISP, core.SchemeThreeInOne} {
			res := attack.RunSIFA(newTarget(s), attack.DefaultSIFAConfig())
			fmt.Printf("  vs %-24s %s\n", s.String()+":", res.Result)
		}
		fmt.Println()
	}

	if run("ifa") {
		fmt.Println("=== IFA / biased-fault SFA (the models SIFA generalises, §IV-B-5) ===")
		for _, s := range []core.Scheme{core.SchemeNaiveDup, core.SchemeThreeInOne} {
			res := attack.RunIFA(newTarget(s), attack.DefaultIFAConfig())
			fmt.Printf("  IFA vs %-20s %s\n", s.String()+":", res.Result)
		}
		for _, s := range []core.Scheme{core.SchemeNaiveDup, core.SchemeThreeInOne} {
			res := attack.RunSFA(newTarget(s), attack.DefaultSFAConfig())
			fmt.Printf("  SFA vs %-20s %s\n", s.String()+":", res.Result)
		}
		fmt.Println()
	}

	if run("fta") {
		fmt.Println("=== FTA (flip one input line of an AND gate in S-box 7) ===")
		type cfg struct {
			label    string
			scheme   core.Scheme
			separate bool
		}
		for _, c := range []cfg{
			{"unprotected", core.SchemeUnprotected, false},
			{"naive-duplication", core.SchemeNaiveDup, false},
			{"acisp (separate S-boxes)", core.SchemeACISP, true},
			{"three-in-one (merged)", core.SchemeThreeInOne, false},
		} {
			fcfg := attack.DefaultFTAConfig()
			if c.separate {
				fcfg.Repeats = 128
			}
			res, err := attack.RunFTAOnDesign(buildDesign(c.scheme, c.separate), deviceKey, fcfg, 0xFA)
			if err != nil {
				fmt.Printf("  vs %-28s error: %v\n", c.label+":", err)
				continue
			}
			fmt.Printf("  vs %-28s %s\n", c.label+":", res.Result)
		}
	}
}
