// Command sconeattack mounts the paper's three attack families against
// each protection scheme and prints the success/failure matrix — the
// executable form of the paper's Section IV-B security argument.
//
// Usage:
//
//	sconeattack [-attack dfa|identical|sifa|ifa|fta|all] [-quick]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/attack"
	"repro/internal/cipher/present"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/spn"
	"repro/internal/synth"
)

var deviceKey = spn.KeyState{0x0123456789ABCDEF, 0x8421}

func buildDesign(scheme core.Scheme, separate bool) *core.Design {
	return core.MustBuild(present.Spec(), core.Options{
		Scheme: scheme, Entropy: core.EntropyPrime,
		Engine: synth.EngineANF, SeparateSbox: separate,
	})
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "sconeattack:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sconeattack", flag.ContinueOnError)
	fs.SetOutput(stderr)
	which := fs.String("attack", "all", "attack to run: dfa, identical, sifa, ifa, fta or all")
	quick := fs.Bool("quick", false, "shrink attack budgets for a fast smoke run (results are noisy)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *which {
	case "dfa", "identical", "sifa", "ifa", "fta", "all":
	default:
		return fmt.Errorf("unknown attack %q", *which)
	}

	newTarget := func(scheme core.Scheme) (*attack.Target, error) {
		return attack.NewTarget(buildDesign(scheme, false), deviceKey, 0xD0D0)
	}
	sel := func(name string) bool { return *which == name || *which == "all" }

	if sel("dfa") {
		fmt.Fprintln(stdout, "=== Classic last-round DFA (single computation, bit-flip faults) ===")
		cfg := attack.DefaultDFAConfig()
		if *quick {
			cfg.PairsPerNibble = 4
		}
		for _, s := range []core.Scheme{core.SchemeUnprotected, core.SchemeNaiveDup, core.SchemeThreeInOne} {
			t, err := newTarget(s)
			if err != nil {
				return err
			}
			res := attack.RunDFA(t, cfg)
			fmt.Fprintf(stdout, "  vs %-24s %s\n", s.String()+":", res)
		}
		fmt.Fprintln(stdout)
	}

	if sel("identical") {
		fmt.Fprintln(stdout, "=== Identical-fault DFA (FDTC 2016: same stuck-at in both computations) ===")
		cfg := attack.IdenticalDFAConfig()
		if *quick {
			cfg.PairsPerNibble = 4
		}
		for _, s := range []core.Scheme{core.SchemeNaiveDup, core.SchemeACISP, core.SchemeThreeInOne} {
			t, err := newTarget(s)
			if err != nil {
				return err
			}
			res := attack.RunDFA(t, cfg)
			fmt.Fprintf(stdout, "  vs %-24s %s\n", s.String()+":", res)
		}
		cfg.Model = fault.BitFlip
		t, err := newTarget(core.SchemeThreeInOne)
		if err != nil {
			return err
		}
		res := attack.RunDFA(t, cfg)
		fmt.Fprintf(stdout, "  vs %-24s %s\n", "three-in-one (identical bit-FLIP, the §IV-B-4 caveat):", res)
		fmt.Fprintln(stdout)
	}

	if sel("sifa") {
		fmt.Fprintln(stdout, "=== SIFA (stuck-at-0 at S-box 13 bit 2, ineffective-fault filtering) ===")
		cfg := attack.DefaultSIFAConfig()
		if *quick {
			cfg.Injections = 256
		}
		for _, s := range []core.Scheme{core.SchemeNaiveDup, core.SchemeACISP, core.SchemeThreeInOne} {
			t, err := newTarget(s)
			if err != nil {
				return err
			}
			res := attack.RunSIFA(t, cfg)
			fmt.Fprintf(stdout, "  vs %-24s %s\n", s.String()+":", res.Result)
		}
		fmt.Fprintln(stdout)
	}

	if sel("ifa") {
		fmt.Fprintln(stdout, "=== IFA / biased-fault SFA (the models SIFA generalises, §IV-B-5) ===")
		icfg := attack.DefaultIFAConfig()
		scfg := attack.DefaultSFAConfig()
		if *quick {
			icfg.Runs = 128
			scfg.Injections = 256
		}
		for _, s := range []core.Scheme{core.SchemeNaiveDup, core.SchemeThreeInOne} {
			t, err := newTarget(s)
			if err != nil {
				return err
			}
			res := attack.RunIFA(t, icfg)
			fmt.Fprintf(stdout, "  IFA vs %-20s %s\n", s.String()+":", res.Result)
		}
		for _, s := range []core.Scheme{core.SchemeNaiveDup, core.SchemeThreeInOne} {
			t, err := newTarget(s)
			if err != nil {
				return err
			}
			res := attack.RunSFA(t, scfg)
			fmt.Fprintf(stdout, "  SFA vs %-20s %s\n", s.String()+":", res.Result)
		}
		fmt.Fprintln(stdout)
	}

	if sel("fta") {
		fmt.Fprintln(stdout, "=== FTA (flip one input line of an AND gate in S-box 7) ===")
		type cfg struct {
			label    string
			scheme   core.Scheme
			separate bool
		}
		for _, c := range []cfg{
			{"unprotected", core.SchemeUnprotected, false},
			{"naive-duplication", core.SchemeNaiveDup, false},
			{"acisp (separate S-boxes)", core.SchemeACISP, true},
			{"three-in-one (merged)", core.SchemeThreeInOne, false},
		} {
			fcfg := attack.DefaultFTAConfig()
			if c.separate {
				fcfg.Repeats = 128
			}
			if *quick {
				fcfg.Repeats = 8
				fcfg.ProfilePTs = 2
				fcfg.AttackPTs = 2
			}
			res, err := attack.RunFTAOnDesign(buildDesign(c.scheme, c.separate), deviceKey, fcfg, 0xFA)
			if err != nil {
				fmt.Fprintf(stdout, "  vs %-28s error: %v\n", c.label+":", err)
				continue
			}
			fmt.Fprintf(stdout, "  vs %-28s %s\n", c.label+":", res.Result)
		}
	}
	return nil
}
