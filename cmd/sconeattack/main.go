// Command sconeattack mounts the paper's three attack families against
// each protection scheme and prints the success/failure matrix — the
// executable form of the paper's Section IV-B security argument.
//
// Usage:
//
//	sconeattack [-attack dfa|identical|sifa|ifa|fta|all] [-quick]
//	            [-spec present80] [-scheme three-in-one] [-entropy prime] [-json]
//
// The design flags share the sconectl/sconesim vocabulary: -spec, -entropy
// and -engine retarget every attack's victim design, and -scheme (when set
// to a non-default value) restricts the matrix to that scheme's rows. With
// -json the matrix is emitted through the shared service encoder instead of
// the text report.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/attack"
	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/service"
	"repro/internal/spn"
)

var deviceKey = spn.KeyState{0x0123456789ABCDEF, 0x8421}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "sconeattack:", err)
		os.Exit(1)
	}
}

// matrixRow is one (attack, scheme) cell of the report, in the shared wire
// vocabulary so -json output lines up with the sconed job results.
type matrixRow struct {
	Attack    string `json:"attack"`
	Scheme    string `json:"scheme"`
	Succeeded bool   `json:"succeeded"`
	Detail    string `json:"detail"`
}

// report accumulates matrix rows and, in text mode, mirrors them to stdout
// in the traditional section layout.
type report struct {
	w    io.Writer // nil in -json mode
	rows []matrixRow
}

func (r *report) section(title string) {
	if r.w != nil {
		fmt.Fprintf(r.w, "=== %s ===\n", title)
	}
}

func (r *report) sectionEnd() {
	if r.w != nil {
		fmt.Fprintln(r.w)
	}
}

// add records one cell. scheme is the wire-vocabulary scheme name; label is
// the (possibly more descriptive) text-report line.
func (r *report) add(attackName string, scheme core.Scheme, label string, res attack.Result, width int) {
	r.rows = append(r.rows, matrixRow{Attack: attackName, Scheme: schemeName(scheme), Succeeded: res.Succeeded, Detail: res.Detail})
	if r.w != nil {
		fmt.Fprintf(r.w, "  vs %-*s %s\n", width, label+":", res)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sconeattack", flag.ContinueOnError)
	fs.SetOutput(stderr)
	which := fs.String("attack", "all", "attack to run: dfa, identical, sifa, ifa, fta or all")
	quick := fs.Bool("quick", false, "shrink attack budgets for a fast smoke run (results are noisy)")
	design := cliflags.RegisterDesign(fs)
	jsonOut := fs.Bool("json", false, "emit the attack matrix as JSON through the shared service encoder")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *which {
	case "dfa", "identical", "sifa", "ifa", "fta", "all":
	default:
		return fmt.Errorf("unknown attack %q", *which)
	}
	_, opts, err := design.Parse()
	if err != nil {
		return err
	}

	// The matrix sweeps schemes by design; a non-default -scheme narrows it
	// to that scheme's rows instead of being silently ignored.
	only := core.Scheme(0)
	restrict := design.Scheme != cliflags.DefaultScheme
	if restrict {
		only = opts.Scheme
	}
	keep := func(s core.Scheme) bool { return !restrict || s == only }

	buildDesign := func(scheme core.Scheme, separate bool) (*core.Design, error) {
		ds := design.DesignSpec()
		ds.Scheme = schemeName(scheme)
		ds.SeparateSbox = separate
		return service.BuildDesign(ds)
	}
	newTarget := func(scheme core.Scheme) (*attack.Target, error) {
		d, err := buildDesign(scheme, false)
		if err != nil {
			return nil, err
		}
		return attack.NewTarget(d, deviceKey, 0xD0D0)
	}
	sel := func(name string) bool { return *which == name || *which == "all" }

	rep := &report{w: stdout}
	if *jsonOut {
		rep.w = nil
	}

	if sel("dfa") {
		rep.section("Classic last-round DFA (single computation, bit-flip faults)")
		cfg := attack.DefaultDFAConfig()
		if *quick {
			cfg.PairsPerNibble = 4
		}
		for _, s := range []core.Scheme{core.SchemeUnprotected, core.SchemeNaiveDup, core.SchemeThreeInOne} {
			if !keep(s) {
				continue
			}
			t, err := newTarget(s)
			if err != nil {
				return err
			}
			rep.add("dfa", s, s.String(), attack.RunDFA(t, cfg), 24)
		}
		rep.sectionEnd()
	}

	if sel("identical") {
		rep.section("Identical-fault DFA (FDTC 2016: same stuck-at in both computations)")
		cfg := attack.IdenticalDFAConfig()
		if *quick {
			cfg.PairsPerNibble = 4
		}
		for _, s := range []core.Scheme{core.SchemeNaiveDup, core.SchemeACISP, core.SchemeThreeInOne} {
			if !keep(s) {
				continue
			}
			t, err := newTarget(s)
			if err != nil {
				return err
			}
			rep.add("identical-dfa", s, s.String(), attack.RunDFA(t, cfg), 24)
		}
		if keep(core.SchemeThreeInOne) {
			cfg.Model = fault.BitFlip
			t, err := newTarget(core.SchemeThreeInOne)
			if err != nil {
				return err
			}
			rep.add("identical-dfa-bitflip", core.SchemeThreeInOne, "three-in-one (identical bit-FLIP, the §IV-B-4 caveat)", attack.RunDFA(t, cfg), 24)
		}
		rep.sectionEnd()
	}

	if sel("sifa") {
		rep.section("SIFA (stuck-at-0 at S-box 13 bit 2, ineffective-fault filtering)")
		cfg := attack.DefaultSIFAConfig()
		if *quick {
			cfg.Injections = 256
		}
		for _, s := range []core.Scheme{core.SchemeNaiveDup, core.SchemeACISP, core.SchemeThreeInOne} {
			if !keep(s) {
				continue
			}
			t, err := newTarget(s)
			if err != nil {
				return err
			}
			rep.add("sifa", s, s.String(), attack.RunSIFA(t, cfg).Result, 24)
		}
		rep.sectionEnd()
	}

	if sel("ifa") {
		rep.section("IFA / biased-fault SFA (the models SIFA generalises, §IV-B-5)")
		icfg := attack.DefaultIFAConfig()
		scfg := attack.DefaultSFAConfig()
		if *quick {
			icfg.Runs = 128
			scfg.Injections = 256
		}
		for _, s := range []core.Scheme{core.SchemeNaiveDup, core.SchemeThreeInOne} {
			if !keep(s) {
				continue
			}
			t, err := newTarget(s)
			if err != nil {
				return err
			}
			rep.add("ifa", s, s.String(), attack.RunIFA(t, icfg).Result, 20)
		}
		for _, s := range []core.Scheme{core.SchemeNaiveDup, core.SchemeThreeInOne} {
			if !keep(s) {
				continue
			}
			t, err := newTarget(s)
			if err != nil {
				return err
			}
			rep.add("sfa", s, s.String(), attack.RunSFA(t, scfg).Result, 20)
		}
		rep.sectionEnd()
	}

	if sel("fta") {
		rep.section("FTA (flip one input line of an AND gate in S-box 7)")
		type cfg struct {
			label    string
			scheme   core.Scheme
			separate bool
		}
		for _, c := range []cfg{
			{"unprotected", core.SchemeUnprotected, false},
			{"naive-duplication", core.SchemeNaiveDup, false},
			{"acisp (separate S-boxes)", core.SchemeACISP, true},
			{"three-in-one (merged)", core.SchemeThreeInOne, false},
		} {
			if !keep(c.scheme) {
				continue
			}
			fcfg := attack.DefaultFTAConfig()
			if c.separate {
				fcfg.Repeats = 128
			}
			if *quick {
				fcfg.Repeats = 8
				fcfg.ProfilePTs = 2
				fcfg.AttackPTs = 2
			}
			d, err := buildDesign(c.scheme, c.separate)
			if err != nil {
				return err
			}
			res, err := attack.RunFTAOnDesign(d, deviceKey, fcfg, 0xFA)
			if err != nil {
				if rep.w != nil {
					fmt.Fprintf(rep.w, "  vs %-28s error: %v\n", c.label+":", err)
				}
				rep.rows = append(rep.rows, matrixRow{Attack: "fta", Scheme: schemeName(c.scheme), Detail: "error: " + err.Error()})
				continue
			}
			rep.add("fta", c.scheme, c.label, res.Result, 28)
		}
	}

	if *jsonOut {
		return service.WriteJSON(stdout, map[string]any{
			"attack": *which,
			"design": design.DesignSpec(),
			"rows":   rep.rows,
		})
	}
	return nil
}

// schemeName maps a core.Scheme back onto the shared wire vocabulary.
func schemeName(s core.Scheme) string {
	return core.SchemeWire(s)
}
