package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunQuickSIFA(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-attack", "sifa", "-quick"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	if !strings.Contains(out.String(), "=== SIFA") {
		t.Fatalf("expected SIFA section in output, got:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-attack", "rowhammer"}, &out, &errb); err == nil {
		t.Fatal("unknown attack accepted")
	}
	if err := run([]string{"-bogus"}, &out, &errb); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-scheme", "quadruple"}, &out, &errb); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

// -json restricted to one scheme emits the matrix through the shared
// service encoder: rows carry the wire vocabulary, nothing else is printed.
func TestRunJSONSchemeFilter(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-attack", "sifa", "-quick", "-scheme", "naive", "-json"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	var doc struct {
		Attack string `json:"attack"`
		Rows   []struct {
			Attack string `json:"attack"`
			Scheme string `json:"scheme"`
			Detail string `json:"detail"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if doc.Attack != "sifa" || len(doc.Rows) != 1 {
		t.Fatalf("filtered matrix %+v", doc)
	}
	if doc.Rows[0].Scheme != "naive" || doc.Rows[0].Detail == "" {
		t.Fatalf("bad row %+v", doc.Rows[0])
	}
	if strings.Contains(out.String(), "===") {
		t.Fatal("-json output mixed with the text report")
	}
}
