package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunQuickSIFA(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-attack", "sifa", "-quick"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	if !strings.Contains(out.String(), "=== SIFA") {
		t.Fatalf("expected SIFA section in output, got:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-attack", "rowhammer"}, &out, &errb); err == nil {
		t.Fatal("unknown attack accepted")
	}
	if err := run([]string{"-bogus"}, &out, &errb); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
