// Command sconetrace dumps a value-change-dump (VCD) waveform of one
// gate-level encryption — optionally with a fault injected — for
// inspection in GTKWave. It records every port bit plus the targeted
// S-box input bus.
//
// Usage:
//
//	sconetrace -scheme three-in-one -fault -sbox 13 -bit 2 > run.vcd
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cipher/present"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/spn"
	"repro/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "sconetrace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sconetrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scheme := fs.String("scheme", "three-in-one", "countermeasure scheme: "+core.SchemeVocabulary())
	doFault := fs.Bool("fault", false, "inject a stuck-at-0 during the last round")
	sbox := fs.Int("sbox", 13, "targeted S-box index")
	bit := fs.Int("bit", 2, "targeted S-box input bit")
	pt := fs.Uint64("pt", 0xCAFEBABE12345678, "plaintext")
	seed := fs.Uint64("seed", 2021, "device randomness seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sch, err := core.ParseScheme(*scheme)
	if err != nil {
		return err
	}

	d := core.MustBuild(present.Spec(), core.Options{
		Scheme: sch, Entropy: core.EntropyPrime, Engine: synth.EngineANF,
	})
	r, err := core.NewRunner(d)
	if err != nil {
		return err
	}

	// Observe every port bit plus the targeted S-box input bus.
	var nets []netlist.Net
	for i := range d.Mod.Inputs {
		nets = append(nets, d.Mod.Inputs[i].Bits...)
	}
	for i := range d.Mod.Outputs {
		nets = append(nets, d.Mod.Outputs[i].Bits...)
	}
	nets = append(nets, d.SboxInputBus(core.BranchActual, *sbox)...)
	rec := sim.NewVCDRecorder(r.S, stdout, 0, nets)
	r.CycleHook = func(int) { _ = rec.Sample() }

	if *doFault {
		r.S.SetInjector(fault.NewInjector(fault.At(
			d.SboxInputNet(core.BranchActual, *sbox, *bit),
			fault.StuckAt0, d.LastRoundCycle())))
	}

	gen := rng.NewXoshiro(*seed)
	key := spn.KeyState{0x0123456789ABCDEF, 0x8421}
	var lf core.LambdaFunc
	if d.LambdaWidth > 0 {
		lf = core.LambdaConst([]uint64{gen.Bits(d.LambdaWidth)})
	}
	res := r.EncryptBatch([]uint64{*pt}, key, []uint64{gen.Uint64()}, lf)
	if err := rec.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "ct=%016X fault=%v (%d cycles dumped)\n",
		res.CT[0], res.Fault[0], d.CyclesPerRun())
	return nil
}
