package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDumpsVCD(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-scheme", "three-in-one", "-fault"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	if !strings.Contains(out.String(), "$enddefinitions") {
		t.Fatal("output is not a VCD dump")
	}
	if !strings.Contains(errb.String(), "ct=") {
		t.Fatalf("expected ciphertext summary on stderr, got: %s", errb.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-scheme", "quintuple"}, &out, &errb); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if err := run([]string{"-bogus"}, &out, &errb); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
