package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/service"
)

func TestRunFig4Tiny(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-experiment", "fig4", "-runs", "256", "-workers", "2"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	if !strings.Contains(out.String(), "256 runs per design") {
		t.Fatalf("expected run summary in output, got:\n%s", out.String())
	}
}

// -json emits the service schema: campaign tallies decode as
// service.CampaignResult and the seed round-trips through the hex U64
// encoding sconed uses on the wire.
func TestRunFig4JSON(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-experiment", "fig4", "-runs", "256", "-workers", "2", "-json"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	var doc struct {
		Experiment string      `json:"experiment"`
		Runs       int         `json:"runs"`
		Seed       service.U64 `json:"seed"`
		Panels     []struct {
			Design   string                 `json:"design"`
			Campaign service.CampaignResult `json:"campaign"`
		} `json:"panels"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if doc.Experiment != "fig4" || doc.Runs != 256 || doc.Seed != 0x5C09E2021 {
		t.Fatalf("envelope %+v", doc)
	}
	if len(doc.Panels) != 2 {
		t.Fatalf("expected 2 panels, got %d", len(doc.Panels))
	}
	for _, p := range doc.Panels {
		if p.Campaign.Total != 256 {
			t.Errorf("panel %s: campaign total %d, want 256", p.Design, p.Campaign.Total)
		}
		if p.Campaign.Ineffective+p.Campaign.Detected+p.Campaign.Effective != p.Campaign.Total {
			t.Errorf("panel %s: outcome tallies do not sum to total: %+v", p.Design, p.Campaign)
		}
	}
	if strings.Contains(out.String(), "runs per design") {
		t.Error("-json output mixed with the human summary line")
	}
}

func TestRunSweepJSON(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-experiment", "sweep", "-runs", "128", "-workers", "2", "-json"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	var doc struct {
		Rows []struct {
			Scheme   string                 `json:"scheme"`
			Model    string                 `json:"model"`
			Campaign service.CampaignResult `json:"campaign"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(doc.Rows) == 0 {
		t.Fatal("sweep JSON has no rows")
	}
	for _, r := range doc.Rows {
		if r.Scheme == "" || r.Model == "" || r.Campaign.Total != 128 {
			t.Fatalf("bad row %+v", r)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-experiment", "fig99"}, &out, &errb); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-experiment", "coverage", "-scheme", "none"}, &out, &errb); err == nil {
		t.Fatal("unknown coverage scheme accepted")
	}
	if err := run([]string{"-runs", "0"}, &out, &errb); err == nil {
		t.Fatal("zero run count accepted")
	}
	if err := run([]string{"-bogus"}, &out, &errb); err == nil {
		t.Fatal("unknown flag accepted")
	}
	// The shared design flag surface is validated up front: the figure
	// experiments are defined on PRESENT-80 and pin their designs.
	if err := run([]string{"-spec", "gift64"}, &out, &errb); err == nil {
		t.Fatal("-spec retarget accepted by a pinned experiment")
	}
	if err := run([]string{"-experiment", "fig4", "-entropy", "per-round"}, &out, &errb); err == nil {
		t.Fatal("-entropy override accepted by a pinned experiment")
	}
	if err := run([]string{"-experiment", "coverage", "-scheme", "unprotected"}, &out, &errb); err == nil {
		t.Fatal("coverage accepted an unduplicated scheme")
	}
}
