package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunFig4Tiny(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-experiment", "fig4", "-runs", "256", "-workers", "2"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	if !strings.Contains(out.String(), "256 runs per design") {
		t.Fatalf("expected run summary in output, got:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-experiment", "fig99"}, &out, &errb); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-experiment", "coverage", "-scheme", "none"}, &out, &errb); err == nil {
		t.Fatal("unknown coverage scheme accepted")
	}
	if err := run([]string{"-runs", "0"}, &out, &errb); err == nil {
		t.Fatal("zero run count accepted")
	}
	if err := run([]string{"-bogus"}, &out, &errb); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
