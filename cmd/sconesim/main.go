// Command sconesim runs the gate-level fault-simulation campaigns of the
// paper's evaluation (Section IV-A): the SIFA bias experiment of Figure 4,
// the identical-fault DFA experiment of Figure 5, and a coverage sweep
// over fault models and locations.
//
// Usage:
//
//	sconesim -experiment fig4 [-runs 80000] [-seed N] [-workers N]
//	sconesim -experiment fig5
//	sconesim -experiment sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	exp := flag.String("experiment", "fig4", "experiment to run: fig4, fig5, sweep, coverage, twofaults, leakage, persistent")
	runs := flag.Int("runs", 80000, "simulated encryptions per design (per location for coverage)")
	seed := flag.Uint64("seed", 0x5C09E2021, "campaign seed")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	scheme := flag.String("scheme", "three-in-one", "coverage: naive, acisp or three-in-one")
	sites := flag.Int("sites", 400, "coverage: number of sampled fault locations (0 = all)")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Runs = *runs
	cfg.Seed = *seed
	cfg.Workers = *workers

	start := time.Now()
	switch *exp {
	case "fig4":
		res, err := experiments.RunFig4(cfg)
		exitOn(err)
		fmt.Println(res)
	case "fig5":
		res, err := experiments.RunFig5(cfg)
		exitOn(err)
		fmt.Println(res)
	case "sweep":
		res, err := experiments.RunSweep(cfg)
		exitOn(err)
		fmt.Println(res)
	case "persistent":
		res, err := experiments.RunPersistent(cfg)
		exitOn(err)
		fmt.Println(res)
	case "twofaults":
		res, err := experiments.RunTwoBiasedFaults(cfg)
		exitOn(err)
		fmt.Println(res)
	case "leakage":
		// Uses -runs as traces per class (default 2048 when 80000).
		if cfg.Runs == 80000 {
			cfg.Runs = 2048
		}
		res, err := experiments.RunLeakage(cfg)
		exitOn(err)
		fmt.Println(res)
	case "coverage":
		// Whole-design location sweep; runs-per-location comes from
		// -runs (use a small value, e.g. 128).
		res, err := experiments.RunLocationCoverage(cfg, coverageScheme(*scheme), *sites)
		exitOn(err)
		fmt.Println(res)
	default:
		fmt.Fprintf(os.Stderr, "sconesim: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	fmt.Printf("\n(%d runs per design, seed %#x, %s)\n", cfg.Runs, cfg.Seed, time.Since(start).Round(time.Millisecond))
}

func coverageScheme(name string) core.Scheme {
	switch name {
	case "naive":
		return core.SchemeNaiveDup
	case "acisp":
		return core.SchemeACISP
	case "three-in-one":
		return core.SchemeThreeInOne
	default:
		fmt.Fprintf(os.Stderr, "sconesim: unknown scheme %q\n", name)
		os.Exit(2)
		return 0
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sconesim:", err)
		os.Exit(1)
	}
}
