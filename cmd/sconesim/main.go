// Command sconesim runs the gate-level fault-simulation campaigns of the
// paper's evaluation (Section IV-A): the SIFA bias experiment of Figure 4,
// the identical-fault DFA experiment of Figure 5, and a coverage sweep
// over fault models and locations.
//
// Usage:
//
//	sconesim -experiment fig4 [-runs 80000] [-seed N] [-workers N]
//	sconesim -experiment fig5
//	sconesim -experiment sweep
//
// With -json, results are emitted as a machine-readable document through
// the same encoder and campaign-result schema the sconed service uses, so
// CLI output and service API responses diff cleanly against each other.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "sconesim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sconesim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("experiment", "fig4", "experiment to run: fig4, fig5, sweep, coverage, twofaults, leakage, persistent")
	runs := fs.Int("runs", 80000, "simulated encryptions per design (per location for coverage)")
	seed := fs.Uint64("seed", 0x5C09E2021, "campaign seed")
	workers := fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	design := cliflags.RegisterDesign(fs)
	sites := fs.Int("sites", 400, "coverage: number of sampled fault locations (0 = all)")
	jsonOut := fs.Bool("json", false, "emit results as JSON in the sconed service schema")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *runs <= 0 {
		return fmt.Errorf("-runs must be positive (got %d)", *runs)
	}
	// The design flags share the service vocabulary; reject bad values
	// before any campaign starts.
	_, opts, err := design.Parse()
	if err != nil {
		return err
	}
	// The figure experiments compare fixed design pairs from the paper;
	// only the coverage sweep honours -scheme, and none retarget -spec.
	if design.Spec != cliflags.DefaultSpec {
		return fmt.Errorf("sconesim experiments are defined on %s; -spec is fixed", cliflags.DefaultSpec)
	}
	if *exp != "coverage" && !design.IsDefault() {
		return fmt.Errorf("experiment %q pins its designs; -scheme/-entropy/-engine only apply to -experiment coverage", *exp)
	}

	cfg := experiments.DefaultConfig()
	cfg.Runs = *runs
	cfg.Seed = *seed
	cfg.Workers = *workers

	start := time.Now()
	var result any
	switch *exp {
	case "fig4":
		res, err := experiments.RunFig4(cfg)
		if err != nil {
			return err
		}
		result = res
	case "fig5":
		res, err := experiments.RunFig5(cfg)
		if err != nil {
			return err
		}
		result = res
	case "sweep":
		res, err := experiments.RunSweep(cfg)
		if err != nil {
			return err
		}
		result = res
	case "persistent":
		res, err := experiments.RunPersistent(cfg)
		if err != nil {
			return err
		}
		result = res
	case "twofaults":
		res, err := experiments.RunTwoBiasedFaults(cfg)
		if err != nil {
			return err
		}
		result = res
	case "leakage":
		// Uses -runs as traces per class (default 2048 when 80000).
		if cfg.Runs == 80000 {
			cfg.Runs = 2048
		}
		res, err := experiments.RunLeakage(cfg)
		if err != nil {
			return err
		}
		result = res
	case "coverage":
		// Whole-design location sweep; runs-per-location comes from
		// -runs (use a small value, e.g. 128).
		if opts.Scheme == core.SchemeUnprotected {
			return fmt.Errorf("coverage needs a duplication scheme (naive, acisp or three-in-one)")
		}
		res, err := experiments.RunLocationCoverage(cfg, opts.Scheme, *sites)
		if err != nil {
			return err
		}
		result = res
	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	if *jsonOut {
		return service.WriteJSON(stdout, jsonDocument(*exp, cfg, result))
	}
	fmt.Fprintln(stdout, result)
	fmt.Fprintf(stdout, "\n(%d runs per design, seed %#x, %s)\n", cfg.Runs, cfg.Seed, time.Since(start).Round(time.Millisecond))
	return nil
}

// jsonDocument wraps an experiment result in the service schema: campaign
// tallies become service.CampaignResult (the exact shape sconed returns for
// campaign jobs) and seeds use the service's hex-string uint64 encoding.
// Experiments without embedded campaigns pass their result through as-is.
func jsonDocument(exp string, cfg experiments.Config, result any) map[string]any {
	doc := map[string]any{
		"experiment": exp,
		"runs":       cfg.Runs,
		"seed":       service.U64(cfg.Seed),
	}
	switch r := result.(type) {
	case experiments.Fig4Result:
		doc["panels"] = []map[string]any{fig4Panel(r.Naive), fig4Panel(r.ThreeInOne)}
	case experiments.Fig5Result:
		doc["panels"] = []map[string]any{fig5Panel(r.Naive), fig5Panel(r.ThreeInOne)}
	case experiments.SweepResult:
		rows := make([]map[string]any, 0, len(r.Rows))
		for _, row := range r.Rows {
			rows = append(rows, map[string]any{
				"scheme":   row.Scheme.String(),
				"model":    row.Model.String(),
				"both":     row.Both,
				"campaign": service.NewCampaignResult(row.Campaign),
				"escaped":  row.Escaped(),
			})
		}
		doc["rows"] = rows
	default:
		doc["result"] = result
	}
	return doc
}

func fig4Panel(p experiments.Fig4Panel) map[string]any {
	return map[string]any{
		"design":        p.Design,
		"campaign":      service.NewCampaignResult(p.Campaign),
		"histogram":     p.Histogram.Counts,
		"sei":           p.Histogram.SEI(),
		"sei_threshold": p.SEIThreshold,
		"empty_bins":    p.Histogram.EmptyBins(),
		"biased":        p.Biased,
	}
}

func fig5Panel(p experiments.Fig5Panel) map[string]any {
	return map[string]any{
		"design":      p.Design,
		"campaign":    service.NewCampaignResult(p.Campaign),
		"released":    p.Released.Counts,
		"ineffective": p.Ineffective.Counts,
	}
}
