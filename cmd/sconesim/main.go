// Command sconesim runs the gate-level fault-simulation campaigns of the
// paper's evaluation (Section IV-A): the SIFA bias experiment of Figure 4,
// the identical-fault DFA experiment of Figure 5, and a coverage sweep
// over fault models and locations.
//
// Usage:
//
//	sconesim -experiment fig4 [-runs 80000] [-seed N] [-workers N]
//	sconesim -experiment fig5
//	sconesim -experiment sweep
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "sconesim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sconesim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("experiment", "fig4", "experiment to run: fig4, fig5, sweep, coverage, twofaults, leakage, persistent")
	runs := fs.Int("runs", 80000, "simulated encryptions per design (per location for coverage)")
	seed := fs.Uint64("seed", 0x5C09E2021, "campaign seed")
	workers := fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	scheme := fs.String("scheme", "three-in-one", "coverage: naive, acisp or three-in-one")
	sites := fs.Int("sites", 400, "coverage: number of sampled fault locations (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *runs <= 0 {
		return fmt.Errorf("-runs must be positive (got %d)", *runs)
	}

	cfg := experiments.DefaultConfig()
	cfg.Runs = *runs
	cfg.Seed = *seed
	cfg.Workers = *workers

	start := time.Now()
	switch *exp {
	case "fig4":
		res, err := experiments.RunFig4(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, res)
	case "fig5":
		res, err := experiments.RunFig5(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, res)
	case "sweep":
		res, err := experiments.RunSweep(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, res)
	case "persistent":
		res, err := experiments.RunPersistent(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, res)
	case "twofaults":
		res, err := experiments.RunTwoBiasedFaults(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, res)
	case "leakage":
		// Uses -runs as traces per class (default 2048 when 80000).
		if cfg.Runs == 80000 {
			cfg.Runs = 2048
		}
		res, err := experiments.RunLeakage(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, res)
	case "coverage":
		// Whole-design location sweep; runs-per-location comes from
		// -runs (use a small value, e.g. 128).
		sch, err := coverageScheme(*scheme)
		if err != nil {
			return err
		}
		res, err := experiments.RunLocationCoverage(cfg, sch, *sites)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, res)
	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	fmt.Fprintf(stdout, "\n(%d runs per design, seed %#x, %s)\n", cfg.Runs, cfg.Seed, time.Since(start).Round(time.Millisecond))
	return nil
}

func coverageScheme(name string) (core.Scheme, error) {
	switch name {
	case "naive":
		return core.SchemeNaiveDup, nil
	case "acisp":
		return core.SchemeACISP, nil
	case "three-in-one":
		return core.SchemeThreeInOne, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q", name)
	}
}
