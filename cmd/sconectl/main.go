// Command sconectl is the CLI client for a running sconed daemon.
//
// Usage:
//
//	sconectl [-server URL] submit -kind campaign -cipher present80 \
//	         -scheme three-in-one -entropy prime -runs 80000 \
//	         -seed 0x5C09E2021 -key 0x0123456789ABCDEF,0x8421 \
//	         -sbox 13 -bit 2 [-stream]
//	sconectl [-server URL] submit -kind lint -netlist core.nl
//	sconectl [-server URL] submit -kind multifault -mode kfault -k 2 \
//	         -sboxes 13 -runs 4096 [-prune] [-max-tuples N] [-stream]
//	sconectl [-server URL] prove -cipher present80 -scheme three-in-one \
//	         -entropy prime [-models stuck-at-0,bit-flip] [-budget N] [-stream]
//	sconectl [-server URL] leakage -cipher present80 -scheme masked \
//	         -pairs 2048 [-power-model hd|hw] [-fixed-pt 0x...] \
//	         [-fault -sbox 13 -bit 2 -model stuck-at-0] [-stream]
//	sconectl plan -cipher present80 -scheme three-in-one -mode kfault \
//	         -k 2 [-sboxes 13,14] [-max-tuples N]
//	sconectl [-server URL] get j000000
//	sconectl [-server URL] list
//	sconectl [-server URL] cancel j000000
//	sconectl [-server URL] watch j000000
//	sconectl [-server URL] results -cipher present80 -scheme three-in-one \
//	         -entropy prime -runs 80000 -seed 0x5C09E2021 [-sbox 13 -bit 2]
//	sconectl [-server URL] runs [job-id]
//	sconectl [-server URL] metrics
//	sconectl [-server URL] workers
//	sconectl [-server URL] leases
//	sconectl [-server URL] top [-interval 2s] [-iterations N]
//
// All output is JSON through the same encoder the daemon uses, so captured
// CLI transcripts diff cleanly against raw API responses. The one exception
// is top, which renders a human-readable status screen from the same metrics
// snapshot, job list and (on a coordinator) worker registry the JSON
// commands expose.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/cliflags"
	"repro/internal/plan"
	"repro/internal/service"
	"repro/internal/service/client"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "sconectl:", err)
		os.Exit(1)
	}
}

func usage(stderr io.Writer, fs *flag.FlagSet) func() {
	return func() {
		fmt.Fprintln(stderr, "usage: sconectl [-server URL] <submit|prove|leakage|plan|get|list|cancel|watch|results|runs|metrics|workers|leases|top> [flags]")
		fs.PrintDefaults()
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sconectl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	server := fs.String("server", "http://127.0.0.1:8344", "sconed base URL")
	fs.Usage = usage(stderr, fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return fmt.Errorf("missing command")
	}
	c := client.New(*server)
	cmd, rest := fs.Arg(0), fs.Args()[1:]
	switch cmd {
	case "submit":
		return cmdSubmit(ctx, c, rest, stdout, stderr)
	case "prove":
		return cmdProve(ctx, c, rest, stdout, stderr)
	case "leakage":
		return cmdLeakage(ctx, c, rest, stdout, stderr)
	case "plan":
		return cmdPlan(rest, stdout, stderr)
	case "get":
		return oneJobCmd(ctx, rest, stdout, c.Get)
	case "cancel":
		return oneJobCmd(ctx, rest, stdout, c.Cancel)
	case "list":
		jobs, err := c.List(ctx)
		if err != nil {
			return err
		}
		return service.WriteJSON(stdout, map[string]any{"jobs": jobs})
	case "watch":
		if len(rest) != 1 {
			return fmt.Errorf("usage: sconectl watch <job-id>")
		}
		return streamJob(ctx, c, rest[0], stdout)
	case "results":
		return cmdResults(ctx, c, rest, stdout, stderr)
	case "runs":
		switch len(rest) {
		case 0:
			recs, err := c.StoredRuns(ctx)
			if err != nil {
				return err
			}
			return service.WriteJSON(stdout, map[string]any{"runs": recs})
		case 1:
			rec, err := c.StoredRun(ctx, rest[0])
			if err != nil {
				return err
			}
			return service.WriteJSON(stdout, rec)
		default:
			return fmt.Errorf("usage: sconectl runs [job-id]")
		}
	case "metrics":
		m, err := c.Metrics(ctx)
		if err != nil {
			return err
		}
		return service.WriteJSON(stdout, m)
	case "workers":
		ws, err := c.Workers(ctx)
		if err != nil {
			return err
		}
		return service.WriteJSON(stdout, map[string]any{"workers": ws})
	case "leases":
		ls, err := c.Leases(ctx)
		if err != nil {
			return err
		}
		return service.WriteJSON(stdout, map[string]any{"leases": ls})
	case "top":
		return cmdTop(ctx, c, rest, stdout, stderr)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func oneJobCmd(ctx context.Context, args []string, stdout io.Writer, f func(context.Context, string) (service.JobStatus, error)) error {
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one job ID")
	}
	st, err := f(ctx, args[0])
	if err != nil {
		return err
	}
	return service.WriteJSON(stdout, st)
}

// streamJob follows the NDJSON feed, echoing every event line.
func streamJob(ctx context.Context, c *client.Client, id string, stdout io.Writer) error {
	final, err := c.Stream(ctx, id, func(ev service.Event) error {
		return service.WriteJSON(stdout, ev)
	})
	if err != nil {
		return err
	}
	_, outcome := client.Done(final)
	if outcome != nil {
		return fmt.Errorf("job %s: %w", id, outcome)
	}
	return nil
}

// cmdTop renders a top-style status screen: the daemon's counter snapshot
// followed by a per-job table, newest submissions last. With -interval it
// refreshes until interrupted or -iterations screens have been drawn.
func cmdTop(ctx context.Context, c *client.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sconectl top", flag.ContinueOnError)
	fs.SetOutput(stderr)
	interval := fs.Duration("interval", 0, "refresh period (0 = one snapshot and exit)")
	iters := fs.Int("iterations", 0, "stop after this many screens (0 = until interrupted)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	for n := 1; ; n++ {
		if err := topScreen(ctx, c, stdout); err != nil {
			return err
		}
		if *interval <= 0 || (*iters > 0 && n >= *iters) {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(*interval):
		}
	}
}

func topScreen(ctx context.Context, c *client.Client, stdout io.Writer) error {
	m, err := c.Metrics(ctx)
	if err != nil {
		return err
	}
	jobs, err := c.List(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "sconed %s\n", time.Now().Format(time.RFC3339))
	fmt.Fprintf(stdout, "queue %-6d running %-6d streams %-6d\n",
		m["queue_depth"], m["jobs_running"], m["stream_clients"])
	fmt.Fprintf(stdout, "submitted %-6d done %-6d failed %-6d canceled %-6d resumed %-6d\n",
		m["jobs_submitted_total"], m["jobs_completed_total"], m["jobs_failed_total"],
		m["jobs_canceled_total"], m["jobs_resumed_total"])
	fmt.Fprintf(stdout, "runs simulated %-12d checkpoints %-6d\n",
		m["runs_simulated_total"], m["checkpoints_total"])
	if workers, err := c.Workers(ctx); err == nil && len(workers) > 0 {
		fmt.Fprintf(stdout, "workers %-6d leases active %-6d granted %-6d reassigned %-6d\n\n",
			m["workers"], m["leases_active"], m["leases_granted_total"], m["leases_reassigned_total"])
		fmt.Fprintf(stdout, "%-10s %-12s %-8s %-7s %-7s %s\n", "WORKER", "NAME", "STATE", "ACTIVE", "DONE", "LAST SEEN")
		for _, w := range workers {
			name := w.Name
			if name == "" {
				name = "-"
			}
			fmt.Fprintf(stdout, "%-10s %-12s %-8s %-7d %-7d %s\n",
				w.ID, name, w.State, w.Active, w.Completed, w.LastSeen.Format(time.RFC3339))
		}
	}
	fmt.Fprintln(stdout)

	sort.Slice(jobs, func(i, j int) bool { return jobs[i].Submitted.Before(jobs[j].Submitted) })
	fmt.Fprintf(stdout, "%-10s %-10s %-9s %s\n", "ID", "KIND", "STATE", "PROGRESS")
	for _, j := range jobs {
		progress := "-"
		if j.Progress != nil && j.Progress.Total > 0 {
			progress = fmt.Sprintf("%d/%d", j.Progress.Done, j.Progress.Total)
		}
		if j.Error != "" {
			progress = "error: " + j.Error
		}
		fmt.Fprintf(stdout, "%-10s %-10s %-9s %s\n", j.ID, j.Kind, j.State, progress)
	}
	return nil
}

// cmdResults queries the daemon's result store by content address — the
// same flag vocabulary as submit, but not a single run is simulated
// server-side. The response reports how much of the campaign is cached and,
// when every batch is, the complete result.
func cmdResults(ctx context.Context, c *client.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sconectl results", flag.ContinueOnError)
	fs.SetOutput(stderr)
	design := cliflags.RegisterDesign(fs)
	runs := fs.Int("runs", 80000, "campaign: simulated encryptions")
	seed := fs.String("seed", "0x5C09E2021", "campaign seed")
	key := fs.String("key", "0x0123456789ABCDEF,0x8421", "cipher key as two comma-separated 64-bit words")
	sbox := fs.Int("sbox", 13, "faulted S-box index")
	bit := fs.Int("bit", 2, "faulted S-box input bit")
	model := fs.String("model", "stuck-at-0", "fault model: stuck-at-0, stuck-at-1, bit-flip")
	branch := fs.String("branch", "actual", "faulted branch: actual, redundant")
	if err := fs.Parse(args); err != nil {
		return err
	}
	seedV, err := service.ParseU64(*seed)
	if err != nil {
		return err
	}
	keyV, err := parseKey(*key)
	if err != nil {
		return err
	}
	req := service.JobRequest{
		Kind:   service.KindCampaign,
		Design: design.DesignSpec(),
		Campaign: &service.CampaignSpec{
			Runs: *runs,
			Seed: seedV,
			Key:  keyV,
			Faults: []service.FaultSpec{{
				Branch: *branch, Sbox: *sbox, Bit: *bit, Model: *model,
			}},
		},
	}
	view, err := c.Results(ctx, req)
	if err != nil {
		return err
	}
	return service.WriteJSON(stdout, view)
}

// cmdProve submits a prove job: the daemon runs the formal independence
// prover over the design's tagged fault points, checkpointing after every
// (fault location, model) pair. Progress events land at pair granularity,
// and a daemon killed mid-run resumes from its last completed pair — watch
// the resumed job with `sconectl watch` and the resumed counter in `get`.
func cmdProve(ctx context.Context, c *client.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sconectl prove", flag.ContinueOnError)
	fs.SetOutput(stderr)
	design := cliflags.RegisterDesign(fs)
	netlistPath := fs.String("netlist", "", "netlist file to upload instead of a synthesised design")
	models := fs.String("models", "", "comma-separated fault models to prove (default: stuck-at-0,stuck-at-1,bit-flip)")
	budget := fs.Int("budget", 0, "BDD node budget (0 = prover default)")
	stream := fs.Bool("stream", false, "follow the job's NDJSON progress stream until it finishes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	req := service.JobRequest{
		Kind:   service.KindProve,
		Design: design.DesignSpec(),
		Prove:  &service.ProveSpec{Budget: *budget},
	}
	if *models != "" {
		for _, m := range strings.Split(*models, ",") {
			req.Prove.Models = append(req.Prove.Models, strings.TrimSpace(m))
		}
	}
	if *netlistPath != "" {
		b, err := os.ReadFile(*netlistPath)
		if err != nil {
			return err
		}
		req.Design = service.DesignSpec{Netlist: string(b)}
	}
	st, err := c.Submit(ctx, req)
	if err != nil {
		return err
	}
	if err := service.WriteJSON(stdout, st); err != nil {
		return err
	}
	if *stream {
		return streamJob(ctx, c, st.ID, stdout)
	}
	return nil
}

// cmdLeakage submits a leakage job: the daemon runs a fixed-vs-random
// TVLA evaluation of the design, checkpointing after every trace batch.
// Progress events land at pair granularity, and a daemon killed
// mid-evaluation resumes by simulating exactly the remaining batches —
// the final t-statistics are bit-identical to an uninterrupted run.
func cmdLeakage(ctx context.Context, c *client.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sconectl leakage", flag.ContinueOnError)
	fs.SetOutput(stderr)
	design := cliflags.RegisterDesign(fs)
	pairs := fs.Int("pairs", 2048, "fixed/random trace pairs to collect")
	seed := fs.String("seed", "0x5C09E2021", "evaluation seed")
	key := fs.String("key", "0x0123456789ABCDEF,0x8421", "cipher key as two comma-separated 64-bit words")
	powerModel := fs.String("power-model", "hd", "power model: hd (Hamming distance), hw (Hamming weight)")
	fixedPT := fs.String("fixed-pt", "0x0123456789ABCDEF", "the fixed class's plaintext")
	withFault := fs.Bool("fault", false, "inject a fault into every run and keep only SIFA-usable traces")
	sbox := fs.Int("sbox", 13, "faulted S-box index (with -fault)")
	bit := fs.Int("bit", 2, "faulted S-box input bit (with -fault)")
	model := fs.String("model", "stuck-at-0", "fault model (with -fault): stuck-at-0, stuck-at-1, bit-flip")
	branch := fs.String("branch", "actual", "faulted branch (with -fault): actual, redundant")
	stream := fs.Bool("stream", false, "follow the job's NDJSON progress stream until it finishes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	seedV, err := service.ParseU64(*seed)
	if err != nil {
		return err
	}
	keyV, err := parseKey(*key)
	if err != nil {
		return err
	}
	ptV, err := service.ParseU64(*fixedPT)
	if err != nil {
		return err
	}
	req := service.JobRequest{
		Kind:   service.KindLeakage,
		Design: design.DesignSpec(),
		Leakage: &service.LeakageSpec{
			Pairs:   *pairs,
			Seed:    seedV,
			Key:     keyV,
			Model:   *powerModel,
			FixedPT: ptV,
		},
	}
	if *withFault {
		req.Leakage.Faults = []service.FaultSpec{{
			Branch: *branch, Sbox: *sbox, Bit: *bit, Model: *model,
		}}
	}
	st, err := c.Submit(ctx, req)
	if err != nil {
		return err
	}
	if err := service.WriteJSON(stdout, st); err != nil {
		return err
	}
	if *stream {
		return streamJob(ctx, c, st.ID, stdout)
	}
	return nil
}

func cmdSubmit(ctx context.Context, c *client.Client, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sconectl submit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	kind := fs.String("kind", "campaign", "job kind: campaign, multifault, dfa, sifa, fta, area, lint, prove, leakage")
	design := cliflags.RegisterDesign(fs)
	engine := cliflags.RegisterEngine(fs)
	netlistPath := fs.String("netlist", "", "netlist file to upload (area/lint jobs)")
	runs := fs.Int("runs", 80000, "campaign: simulated encryptions")
	seed := fs.String("seed", "0x5C09E2021", "campaign/attack seed")
	key := fs.String("key", "0x0123456789ABCDEF,0x8421", "cipher key as two comma-separated 64-bit words")
	sbox := fs.Int("sbox", 13, "faulted/probed S-box index")
	bit := fs.Int("bit", 2, "faulted S-box input bit")
	model := fs.String("model", "stuck-at-0", "fault model: stuck-at-0, stuck-at-1, bit-flip")
	branch := fs.String("branch", "actual", "faulted branch: actual, redundant")
	mode := fs.String("mode", "kfault", "multifault: plan mode, kfault or persistent")
	arity := fs.Int("k", 2, "multifault kfault: simultaneous fault locations per tuple")
	sboxes := fs.String("sboxes", "", "multifault: comma-separated S-box indices (kfault: site columns; persistent: table entries)")
	prune := fs.Bool("prune", false, "multifault kfault: skip tuples containing an empirically inert site")
	maxTuples := fs.Int("max-tuples", 0, "multifault: truncate the plan after this many placements (0 = no cap)")
	pairs := fs.Int("pairs", 2048, "leakage: fixed/random trace pairs")
	powerModel := fs.String("power-model", "hd", "leakage: power model, hd or hw")
	fixedPT := fs.String("fixed-pt", "0x0123456789ABCDEF", "leakage: the fixed class's plaintext")
	withFault := fs.Bool("fault", false, "leakage: inject the -branch/-sbox/-bit/-model fault and keep only SIFA-usable traces")
	stream := fs.Bool("stream", false, "follow the job's NDJSON progress stream until it finishes")
	if err := fs.Parse(args); err != nil {
		return err
	}

	seedV, err := service.ParseU64(*seed)
	if err != nil {
		return err
	}
	keyV, err := parseKey(*key)
	if err != nil {
		return err
	}

	req := service.JobRequest{
		Kind:   service.Kind(*kind),
		Design: design.DesignSpec(),
	}
	if *netlistPath != "" {
		b, err := os.ReadFile(*netlistPath)
		if err != nil {
			return err
		}
		req.Design = service.DesignSpec{Netlist: string(b)}
	}
	engineCfg, err := engine.Config()
	if err != nil {
		return err
	}
	switch req.Kind {
	case service.KindCampaign:
		req.Campaign = &service.CampaignSpec{
			Runs: *runs,
			Seed: seedV,
			Key:  keyV,
			Faults: []service.FaultSpec{{
				Branch: *branch, Sbox: *sbox, Bit: *bit, Model: *model,
			}},
			LaneWords: engineCfg.LaneWords,
			Workers:   engineCfg.Parallelism,
			BatchRuns: engineCfg.BatchRuns,
		}
	case service.KindMultiFault:
		idx, err := parseInts(*sboxes)
		if err != nil {
			return err
		}
		req.MultiFault = &service.MultiFaultSpec{
			Mode:         *mode,
			K:            *arity,
			Model:        *model,
			RunsPerTuple: *runs,
			Seed:         seedV,
			Key:          keyV,
			Sboxes:       idx,
			Prune:        *prune,
			MaxTuples:    *maxTuples,
		}
	case service.KindDFA, service.KindSIFA, service.KindFTA:
		req.Attack = &service.AttackSpec{Key: keyV, Seed: seedV, Sbox: sbox, Bit: bit, Model: ""}
	case service.KindLeakage:
		ptV, err := service.ParseU64(*fixedPT)
		if err != nil {
			return err
		}
		req.Leakage = &service.LeakageSpec{
			Pairs:   *pairs,
			Seed:    seedV,
			Key:     keyV,
			Model:   *powerModel,
			FixedPT: ptV,
		}
		if *withFault {
			req.Leakage.Faults = []service.FaultSpec{{
				Branch: *branch, Sbox: *sbox, Bit: *bit, Model: *model,
			}}
		}
	case service.KindArea, service.KindLint, service.KindProve:
		// Design-only kinds; `sconectl prove` exposes the prove knobs.
	default:
		return fmt.Errorf("unknown job kind %q", *kind)
	}

	st, err := c.Submit(ctx, req)
	if err != nil {
		return err
	}
	if err := service.WriteJSON(stdout, st); err != nil {
		return err
	}
	if *stream {
		return streamJob(ctx, c, st.ID, stdout)
	}
	return nil
}

// cmdPlan sizes a multi-fault sweep locally, without a daemon: it
// synthesises the selected design, enumerates exactly the plan the
// multifault job kind would execute and prints the sizing summary as JSON —
// the cheap way to judge C(n, k) before paying for simulation.
func cmdPlan(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sconectl plan", flag.ContinueOnError)
	fs.SetOutput(stderr)
	design := cliflags.RegisterDesign(fs)
	mode := fs.String("mode", "kfault", "plan mode: kfault, persistent")
	arity := fs.Int("k", 2, "kfault: simultaneous fault locations per tuple")
	sboxes := fs.String("sboxes", "", "comma-separated S-box indices (kfault: site columns; persistent: table entries)")
	maxTuples := fs.Int("max-tuples", 0, "truncate the plan after this many placements (0 = no cap)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	idx, err := parseInts(*sboxes)
	if err != nil {
		return err
	}
	d, err := design.Build()
	if err != nil {
		return err
	}
	switch *mode {
	case "kfault":
		p, err := plan.New(d, plan.Request{K: *arity, Sboxes: idx, MaxTuples: *maxTuples})
		if err != nil {
			return err
		}
		sites := make([]string, len(p.Sites))
		for i, s := range p.Sites {
			sites[i] = s.String()
		}
		return service.WriteJSON(stdout, map[string]any{
			"mode":      "kfault",
			"k":         p.K,
			"sites":     sites,
			"planned":   len(p.Tuples),
			"truncated": p.Truncated,
			"total":     plan.NumTuples(len(p.Sites), p.K),
		})
	case "persistent":
		cs, truncated, err := plan.PersistentPlan(d.Spec.SboxBits, idx, *maxTuples)
		if err != nil {
			return err
		}
		size := 1 << d.Spec.SboxBits
		entries := len(idx)
		if entries == 0 {
			entries = size
		}
		return service.WriteJSON(stdout, map[string]any{
			"mode":      "persistent",
			"sbox_bits": d.Spec.SboxBits,
			"planned":   len(cs),
			"truncated": truncated,
			"total":     entries * (size - 1),
		})
	default:
		return fmt.Errorf("unknown plan mode %q", *mode)
	}
}

// parseInts parses a comma-separated integer list; empty means none.
func parseInts(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, p := range strings.Split(s, ",") {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &v); err != nil {
			return nil, fmt.Errorf("bad integer %q in list", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseKey parses "lo,hi" 64-bit words (hex or decimal).
func parseKey(s string) ([2]service.U64, error) {
	var k [2]service.U64
	parts := strings.Split(s, ",")
	if len(parts) == 0 || len(parts) > 2 {
		return k, fmt.Errorf("key must be one or two comma-separated 64-bit words")
	}
	for i, p := range parts {
		v, err := service.ParseU64(strings.TrimSpace(p))
		if err != nil {
			return k, err
		}
		k[i] = v
	}
	return k, nil
}
