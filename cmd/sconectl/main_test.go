package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/synth"

	"repro/internal/cipher/present"
)

func startServer(t *testing.T) (string, *service.Service) {
	t.Helper()
	svc, err := service.New(service.Config{Workers: 2, CheckpointEveryRuns: 64})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return srv.URL, svc
}

func runCtl(t *testing.T, server string, args ...string) (string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(context.Background(), append([]string{"-server", server}, args...), &out, &errb)
	return out.String(), err
}

func TestSubmitGetCancelList(t *testing.T) {
	server, _ := startServer(t)

	out, err := runCtl(t, server, "submit",
		"-kind", "campaign", "-cipher", "present80", "-scheme", "three-in-one",
		"-entropy", "prime", "-runs", "100000", "-seed", "0x5C09E2021",
		"-key", "0x0123456789ABCDEF,0x8421", "-sbox", "13", "-bit", "2")
	if err != nil {
		t.Fatal(err)
	}
	var st service.JobStatus
	if err := json.Unmarshal([]byte(out), &st); err != nil {
		t.Fatalf("submit output %q: %v", out, err)
	}
	if st.Kind != service.KindCampaign || st.ID == "" {
		t.Fatalf("submit returned %+v", st)
	}

	out, err = runCtl(t, server, "get", st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, st.ID) {
		t.Fatalf("get output %q missing job ID", out)
	}

	out, err = runCtl(t, server, "cancel", st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var canceled service.JobStatus
	if err := json.Unmarshal([]byte(out), &canceled); err != nil {
		t.Fatal(err)
	}

	out, err = runCtl(t, server, "list")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Jobs []service.JobStatus `json:"jobs"`
	}
	if err := json.Unmarshal([]byte(out), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) != 1 || listing.Jobs[0].ID != st.ID {
		t.Fatalf("list returned %+v", listing.Jobs)
	}
}

func TestWatchStreamsToCompletion(t *testing.T) {
	server, _ := startServer(t)

	out, err := runCtl(t, server, "submit",
		"-kind", "campaign", "-runs", "320", "-stream")
	if err != nil {
		t.Fatal(err)
	}
	// The output is the submit status followed by the event stream; the
	// final event must be a result whose job state is done.
	dec := json.NewDecoder(strings.NewReader(out))
	var st service.JobStatus
	if err := dec.Decode(&st); err != nil {
		t.Fatal(err)
	}
	var lastType string
	var lastJob *service.JobStatus
	for dec.More() {
		var ev service.Event
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		lastType, lastJob = ev.Type, ev.Job
	}
	if lastType != "result" || lastJob == nil || lastJob.State != service.StateDone {
		t.Fatalf("stream ended with %q event, job %+v", lastType, lastJob)
	}
	if lastJob.Result == nil || lastJob.Result.Campaign == nil {
		t.Fatal("terminal event has no campaign result")
	}
	if lastJob.Result.Campaign.Total != 320 {
		t.Fatalf("campaign total %d, want 320", lastJob.Result.Campaign.Total)
	}

	// watch re-follows a finished job and still lands on the result line.
	out, err = runCtl(t, server, "watch", st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"result"`) {
		t.Fatalf("watch output %q has no result event", out)
	}
}

func TestSubmitNetlistLint(t *testing.T) {
	server, _ := startServer(t)

	d, err := core.Build(present.Spec(), core.Options{Scheme: core.SchemeThreeInOne, Engine: synth.EngineANF})
	if err != nil {
		t.Fatal(err)
	}
	var nl bytes.Buffer
	if err := d.Mod.WriteText(&nl); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "core.nl")
	if err := os.WriteFile(path, nl.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := runCtl(t, server, "submit", "-kind", "lint", "-netlist", path, "-stream")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"lint"`) {
		t.Fatalf("lint stream output %q", out)
	}
}

// TestProveCommand drives `sconectl prove` end to end: a netlist with a
// seeded conditional bias streams to completion with dependent verdicts
// and a concrete key-bit witness in the result.
func TestProveCommand(t *testing.T) {
	server, _ := startServer(t)

	const fixture = `module sifa_cond_bias
nets 6
netname 4 a1
netname 5 v
netname 6 flag
input din 1
input key 2
input lambda 3
output ct 5
output fault 6
cell AND2 4 1 2
cell XOR2 5 3 1 tag=fp.v
cell XOR2 6 3 4
endmodule
`
	path := filepath.Join(t.TempDir(), "biased.nl")
	if err := os.WriteFile(path, []byte(fixture), 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := runCtl(t, server, "prove", "-netlist", path,
		"-models", "stuck-at-0,stuck-at-1", "-stream")
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(strings.NewReader(out))
	var st service.JobStatus
	if err := dec.Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Kind != service.KindProve {
		t.Fatalf("submitted kind %s, want prove", st.Kind)
	}
	var lastJob *service.JobStatus
	for dec.More() {
		var ev service.Event
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		if ev.Job != nil {
			lastJob = ev.Job
		}
	}
	if lastJob == nil || lastJob.State != service.StateDone {
		t.Fatalf("prove stream ended with job %+v", lastJob)
	}
	res := lastJob.Result.Prove
	if res == nil || res.Dependent != 2 || res.Clean() {
		t.Fatalf("prove result %+v, want 2 dependent pairs", res)
	}
	if !strings.Contains(out, "key bit") {
		t.Fatalf("prove output carries no witness: %q", out)
	}

	if _, err := runCtl(t, server, "prove", "-models", "gamma-ray"); err == nil {
		t.Error("unknown prove model accepted")
	}
}

func TestBadInvocations(t *testing.T) {
	server, _ := startServer(t)
	if _, err := runCtl(t, server, "frobnicate"); err == nil {
		t.Error("unknown command accepted")
	}
	if _, err := runCtl(t, server); err == nil {
		t.Error("missing command accepted")
	}
	if _, err := runCtl(t, server, "get"); err == nil {
		t.Error("get without ID accepted")
	}
	if _, err := runCtl(t, server, "get", "j424242"); err == nil {
		t.Error("get of unknown job succeeded")
	}
	if _, err := runCtl(t, server, "submit", "-kind", "explode"); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := runCtl(t, server, "submit", "-key", "1,2,3"); err == nil {
		t.Error("three-word key accepted")
	}
	if _, err := runCtl(t, server, "submit", "-seed", "banana"); err == nil {
		t.Error("non-numeric seed accepted")
	}
}

// TestResultsAndRunsCommands drives the result-store read commands against
// a store-backed daemon: after one -stream submission, `results` with the
// same flags answers complete from the cache and `runs` lists the durable
// provenance record.
func TestResultsAndRunsCommands(t *testing.T) {
	svc, err := service.New(service.Config{Workers: 1, CheckpointEveryRuns: 64, StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	server := srv.URL

	flags := []string{"-runs", "320", "-seed", "0x5C09E2021", "-sbox", "13", "-bit", "2"}
	out, err := runCtl(t, server, append([]string{"submit", "-kind", "campaign", "-stream"}, flags...)...)
	if err != nil {
		t.Fatal(err)
	}
	var st service.JobStatus
	if err := json.NewDecoder(strings.NewReader(out)).Decode(&st); err != nil {
		t.Fatal(err)
	}

	out, err = runCtl(t, server, append([]string{"results"}, flags...)...)
	if err != nil {
		t.Fatal(err)
	}
	var view service.ResultsView
	if err := json.Unmarshal([]byte(out), &view); err != nil {
		t.Fatalf("results output %q: %v", out, err)
	}
	if !view.Complete || view.CachedBatches != view.Batches || view.Result == nil || view.Result.Total != 320 {
		t.Fatalf("results view %+v", view)
	}

	// Different parameters address a different campaign: nothing cached.
	out, err = runCtl(t, server, "results", "-runs", "320", "-seed", "0x5C09E2021", "-sbox", "7", "-bit", "2")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(out), &view); err != nil {
		t.Fatal(err)
	}
	if view.Complete || view.CachedBatches != 0 {
		t.Fatalf("uncached campaign reported %+v", view)
	}

	out, err = runCtl(t, server, "runs")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Runs []service.RunRecord `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &listing); err != nil {
		t.Fatalf("runs output %q: %v", out, err)
	}
	if len(listing.Runs) != 1 || listing.Runs[0].ID != st.ID || listing.Runs[0].State != "done" {
		t.Fatalf("runs listing %+v", listing.Runs)
	}

	out, err = runCtl(t, server, "runs", st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var rec service.RunRecord
	if err := json.Unmarshal([]byte(out), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.ID != st.ID || rec.SimulatedBatches != rec.Batches {
		t.Fatalf("run record %+v", rec)
	}

	if _, err := runCtl(t, server, "runs", "j424242"); err == nil {
		t.Error("runs of unknown ID succeeded")
	}
	if _, err := runCtl(t, server, "runs", "a", "b"); err == nil {
		t.Error("runs accepted two arguments")
	}
	if _, err := runCtl(t, server, "results", "-seed", "banana"); err == nil {
		t.Error("results accepted a malformed seed")
	}
}

func TestMetricsCommand(t *testing.T) {
	server, _ := startServer(t)
	out, err := runCtl(t, server, "metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]int64
	if err := json.Unmarshal([]byte(out), &m); err != nil {
		t.Fatalf("metrics output %q: %v", out, err)
	}
	if _, ok := m["jobs_submitted_total"]; !ok {
		t.Fatalf("metrics missing counters: %v", m)
	}
}

// top renders the human status screen: counters up front, one row per job.
func TestTopCommand(t *testing.T) {
	server, _ := startServer(t)
	out, err := runCtl(t, server, "submit", "-kind", "campaign", "-runs", "320", "-stream")
	if err != nil {
		t.Fatal(err)
	}
	var st service.JobStatus
	if err := json.NewDecoder(strings.NewReader(out)).Decode(&st); err != nil {
		t.Fatal(err)
	}

	out, err = runCtl(t, server, "top")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"submitted 1", "runs simulated 320", "ID", st.ID, "done"} {
		if !strings.Contains(out, want) {
			t.Errorf("top output missing %q:\n%s", want, out)
		}
	}

	if _, err := runCtl(t, server, "top", "stray"); err == nil {
		t.Error("top accepted a positional argument")
	}
	if _, err := runCtl(t, server, "top", "-interval", "nope"); err == nil {
		t.Error("top accepted a malformed interval")
	}
}

// TestWorkersLeasesAndTopFleet drives the fleet commands against a
// coordinator: empty listings first, then a joined worker shows up in
// workers, leases and the top screen's fleet section.
func TestWorkersLeasesAndTopFleet(t *testing.T) {
	svc, err := service.New(service.Config{Workers: 1, Dist: service.DistConfig{Enabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	server := srv.URL

	out, err := runCtl(t, server, "workers")
	if err != nil {
		t.Fatal(err)
	}
	var ws struct {
		Workers []service.WorkerInfo `json:"workers"`
	}
	if err := json.Unmarshal([]byte(out), &ws); err != nil {
		t.Fatalf("workers output %q: %v", out, err)
	}
	if len(ws.Workers) != 0 {
		t.Fatalf("fresh coordinator lists workers: %+v", ws.Workers)
	}

	if _, err := client.New(server).JoinWorker(context.Background(), service.JoinRequest{Name: "probe"}); err != nil {
		t.Fatal(err)
	}

	out, err = runCtl(t, server, "workers")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(out), &ws); err != nil {
		t.Fatal(err)
	}
	if len(ws.Workers) != 1 || ws.Workers[0].Name != "probe" || ws.Workers[0].State != service.WorkerActive {
		t.Fatalf("workers after join: %+v", ws.Workers)
	}

	out, err = runCtl(t, server, "leases")
	if err != nil {
		t.Fatal(err)
	}
	var ls struct {
		Leases []service.LeaseInfo `json:"leases"`
	}
	if err := json.Unmarshal([]byte(out), &ls); err != nil {
		t.Fatalf("leases output %q: %v", out, err)
	}
	if len(ls.Leases) != 0 {
		t.Fatalf("idle coordinator lists leases: %+v", ls.Leases)
	}

	out, err = runCtl(t, server, "top")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"workers 1", "WORKER", "probe", "active"} {
		if !strings.Contains(out, want) {
			t.Errorf("top fleet section missing %q:\n%s", want, out)
		}
	}

	// Against a non-coordinator the listings stay empty and top omits the
	// fleet section entirely.
	server2, _ := startServer(t)
	out, err = runCtl(t, server2, "top")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "WORKER") {
		t.Fatalf("top shows a fleet section on a non-coordinator:\n%s", out)
	}
}
