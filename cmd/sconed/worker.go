package main

// Worker mode: `sconed -worker -join <coordinator-url>` turns this binary
// into a lease-pulling campaign worker. It serves no HTTP itself — the
// coordinator owns the API surface — and is safe to run in any number
// next to one coordinator: the lease protocol's determinism makes workers
// interchangeable and expendable.

import (
	"context"
	"fmt"
	"io"

	"repro/internal/service"
	"repro/internal/service/client"
)

type workerOptions struct {
	join         string
	name         string
	capacity     int
	chunkBatches int
	simWorkers   int
	simLaneWords int
}

// runWorker joins the coordinator and executes leases until ctx is
// cancelled (SIGTERM/SIGINT), then stops gracefully: the current lease is
// failed back for immediate reassignment and the worker leaves the
// registry.
func runWorker(ctx context.Context, opts workerOptions, stdout io.Writer) error {
	w := client.NewWorker(client.WorkerConfig{
		Coordinator:  opts.join,
		Name:         opts.name,
		Capacity:     opts.capacity,
		ChunkBatches: opts.chunkBatches,
		SimWorkers:   opts.simWorkers,
		SimLaneWords: opts.simLaneWords,
		OnLease: func(g service.LeaseGrant) {
			fmt.Fprintf(stdout, "sconed: lease %s job %s batches [%d,%d)\n",
				g.LeaseID, g.JobID, g.FirstBatch, g.LastBatch)
		},
	})
	fmt.Fprintf(stdout, "sconed: worker joining %s\n", opts.join)
	if err := w.Run(ctx); err != nil && ctx.Err() == nil {
		return err
	}
	fmt.Fprintln(stdout, "sconed: worker stopped")
	return nil
}
