// Command sconed serves the scone engine as a fault-campaign daemon: an
// HTTP/JSON API over internal/service with a bounded job queue, a sharded
// worker pool, NDJSON progress streaming and durable campaign checkpoints.
//
// Usage:
//
//	sconed [-addr :8344] [-state DIR] [-workers N] [-queue N]
//	       [-checkpoint-runs N] [-sim-workers N] [-lanes W] [-pprof]
//	       [-dist] [-lease-batches N] [-lease-ttl D] [-lease-attempts N]
//	sconed -worker -join URL [-name NAME] [-capacity N] [-chunk-batches N]
//	       [-sim-workers N] [-lanes W]
//
// With -dist the daemon is a distributed-fabric coordinator: campaign jobs
// are split into batch-range leases that worker processes pull, execute and
// report back over /v1; expired or failed leases are reassigned with
// jittered backoff and the merged result is bit-identical to a single-node
// run. With -worker the process runs no HTTP API of its own — it joins the
// coordinator at -join, heartbeats, and executes leases until signalled.
//
// On SIGTERM/SIGINT the daemon drains gracefully: intake stops, running
// campaigns checkpoint and return to the queue, and a restart on the same
// -state directory resumes them with bit-identical final results. A
// signalled worker fails its current lease back to the coordinator for
// immediate reassignment and leaves the registry.
//
// GET /v1/metrics serves the full observability registry — service,
// simulator, fault-campaign and prover families — in Prometheus text format (legacy
// JSON with Accept: application/json); the unversioned /metrics and
// /healthz aliases answer with a Deprecation header. With -pprof the Go
// runtime profiles are exposed under /debug/pprof/.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/leakage"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/prove"
	"repro/internal/service"
	"repro/internal/sim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "sconed:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until ctx is cancelled (signal) or the
// listener fails. It prints the bound address, so callers (and tests) can
// use -addr with port 0.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sconed", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8344", "listen address")
	state := fs.String("state", "", "state directory for job records and campaign checkpoints (empty: in-memory only)")
	workers := fs.Int("workers", 2, "worker goroutines / queue shards (jobs running concurrently)")
	queueDepth := fs.Int("queue", 32, "queued-job capacity per shard")
	ckptRuns := fs.Int("checkpoint-runs", 4096, "campaign checkpoint interval in simulated runs")
	simWorkers := fs.Int("sim-workers", 0, "goroutines per campaign simulation (0 = GOMAXPROCS)")
	simLanes := fs.Int("lanes", 0, "engine word width per campaign simulation: 1, 2 or 4 (0 = 1); results are identical at every width")
	drainWait := fs.Duration("drain-timeout", 30*time.Second, "how long to wait for running jobs to checkpoint on shutdown")
	pprofOn := fs.Bool("pprof", false, "expose Go runtime profiles under /debug/pprof/")
	dist := fs.Bool("dist", false, "coordinator mode: distribute campaign jobs to sconed workers as batch-range leases")
	leaseBatches := fs.Int("lease-batches", 8, "batches per lease in coordinator mode")
	leaseTTL := fs.Duration("lease-ttl", 15*time.Second, "lease heartbeat TTL in coordinator mode")
	leaseAttempts := fs.Int("lease-attempts", 8, "grant attempts per batch range before the job fails")
	workerMode := fs.Bool("worker", false, "worker mode: pull and execute leases from a coordinator instead of serving HTTP")
	join := fs.String("join", "", "coordinator base URL to join in worker mode (e.g. http://127.0.0.1:8344)")
	name := fs.String("name", "", "worker name shown in /v1/workers listings")
	capacity := fs.Int("capacity", 1, "concurrent leases advertised by the worker")
	chunkBatches := fs.Int("chunk-batches", 4, "batches per progress report inside one lease")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	// Reject an impossible default width before any job hits it.
	if err := (fault.EngineConfig{LaneWords: *simLanes}).Validate(); err != nil {
		return err
	}
	if *workerMode {
		if *join == "" {
			return fmt.Errorf("-worker needs -join <coordinator-url>")
		}
		return runWorker(ctx, workerOptions{
			join:         *join,
			name:         *name,
			capacity:     *capacity,
			chunkBatches: *chunkBatches,
			simWorkers:   *simWorkers,
			simLaneWords: *simLanes,
		}, stdout)
	}
	if *join != "" {
		return fmt.Errorf("-join requires -worker")
	}

	// One registry for the whole process: the service registers its own
	// families on it, and the simulator and fault packages hook their
	// package-level instruments in so /metrics shows every layer at once.
	reg := obs.NewRegistry()
	sim.EnableObservability(reg)
	fault.EnableObservability(reg)
	prove.EnableObservability(reg)
	plan.EnableObservability(reg)
	leakage.EnableObservability(reg)

	svc, err := service.New(service.Config{
		Workers:             *workers,
		QueueDepth:          *queueDepth,
		StateDir:            *state,
		CheckpointEveryRuns: *ckptRuns,
		SimWorkers:          *simWorkers,
		SimLaneWords:        *simLanes,
		Obs:                 reg,
		Dist: service.DistConfig{
			Enabled:      *dist,
			LeaseBatches: *leaseBatches,
			LeaseTTL:     *leaseTTL,
			MaxAttempts:  *leaseAttempts,
		},
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "sconed: listening on %s\n", ln.Addr())

	handler := svc.Handler()
	if *pprofOn {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}

	srv := &http.Server{Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		svc.Close()
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "sconed: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	drainErr := svc.Drain(drainCtx)
	shutErr := srv.Shutdown(drainCtx)
	if drainErr != nil {
		return drainErr
	}
	if shutErr != nil && shutErr != http.ErrServerClosed {
		return shutErr
	}
	fmt.Fprintln(stdout, "sconed: stopped")
	return nil
}
