package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// startDaemon runs the daemon on an ephemeral port and returns its base URL
// plus a cancel func that triggers the graceful-drain path.
func startDaemon(t *testing.T, extraArgs ...string) (string, context.CancelFunc, <-chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	args := append([]string{"-addr", "127.0.0.1:0", "-drain-timeout", "30s"}, extraArgs...)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, args, pw, io.Discard)
		pw.Close()
	}()

	sc := bufio.NewScanner(pr)
	if !sc.Scan() {
		cancel()
		t.Fatalf("daemon produced no output: %v", sc.Err())
	}
	line := sc.Text()
	addr, ok := strings.CutPrefix(line, "sconed: listening on ")
	if !ok {
		cancel()
		t.Fatalf("unexpected first line %q", line)
	}
	// Keep draining the pipe so later prints don't block the daemon.
	go func() {
		for sc.Scan() {
		}
	}()
	return "http://" + addr, cancel, errCh
}

func TestDaemonServesAndDrains(t *testing.T) {
	base, cancel, errCh := startDaemon(t)
	defer cancel()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}

	// Default /metrics is Prometheus text and carries all three layers'
	// families (the daemon wires sim and fault onto the service registry).
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	for _, family := range []string{
		"# TYPE scone_service_jobs_submitted_total counter",
		"scone_sim_evals_total",
		"scone_fault_runs_total",
	} {
		if !strings.Contains(string(text), family) {
			t.Fatalf("metrics missing %q:\n%s", family, text)
		}
	}

	// Legacy JSON snapshot stays available via content negotiation.
	req, err := http.NewRequest(http.MethodGet, base+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/json")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := m["jobs_submitted_total"]; !ok {
		t.Fatalf("metrics missing counters: %v", m)
	}

	body := `{"kind":"lint","design":{"cipher":"present80","scheme":"three-in-one"}}`
	resp, err = http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit: %s %+v", resp.Status, st)
	}

	// Signal-equivalent shutdown: cancelling run's context drains and exits.
	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon exited with %v", err)
		}
	case <-time.After(time.Minute):
		t.Fatal("daemon did not exit after cancel")
	}
}

// -pprof mounts the Go runtime profiles next to the API; without it the
// debug endpoints do not exist.
func TestDaemonPprofFlag(t *testing.T) {
	base, cancel, errCh := startDaemon(t, "-pprof")
	resp, err := http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		cancel()
		t.Fatalf("pprof cmdline: %s", resp.Status)
	}
	// The API must still be reachable through the wrapping mux.
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		cancel()
		t.Fatalf("healthz behind pprof mux: %s", resp.Status)
	}
	cancel()
	<-errCh

	base, cancel, errCh = startDaemon(t)
	defer func() {
		cancel()
		<-errCh
	}()
	resp, err = http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof exposed without -pprof")
	}
}

func TestDaemonRejectsBadFlags(t *testing.T) {
	err := run(context.Background(), []string{"-addr"}, io.Discard, io.Discard)
	if err == nil {
		t.Fatal("missing flag value accepted")
	}
	err = run(context.Background(), []string{"stray"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unexpected arguments") {
		t.Fatalf("stray argument: %v", err)
	}
	err = run(context.Background(), []string{"-lanes", "5"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "lane words") {
		t.Fatalf("invalid lane width: %v", err)
	}
}

func TestDaemonStatePersistsAcrossRestart(t *testing.T) {
	state := t.TempDir()

	base, cancel, errCh := startDaemon(t, "-state", state, "-workers", "1")
	body := `{"kind":"lint","design":{"cipher":"present80","scheme":"three-in-one"}}`
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	var st struct {
		ID string `json:"id"`
	}
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()

	// Wait for the job to finish before restarting.
	deadline := time.Now().Add(time.Minute)
	for {
		r, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s", base, st.ID))
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		var got struct {
			State string `json:"state"`
		}
		json.NewDecoder(r.Body).Decode(&got)
		r.Body.Close()
		if got.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("job stuck in %s", got.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}

	base2, cancel2, errCh2 := startDaemon(t, "-state", state, "-workers", "1")
	defer func() {
		cancel2()
		<-errCh2
	}()
	r, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s", base2, st.ID))
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		State string `json:"state"`
	}
	json.NewDecoder(r.Body).Decode(&got)
	r.Body.Close()
	if got.State != "done" {
		t.Fatalf("restarted daemon reports job %s as %q, want done", st.ID, got.State)
	}
}

// TestDaemonWorkerMode runs a coordinator and a worker as two run()
// invocations of this binary — the two-terminal deployment from the README
// — and checks the worker pulls leases until the campaign completes.
func TestDaemonWorkerMode(t *testing.T) {
	base, cancel, errCh := startDaemon(t,
		"-dist", "-lease-batches", "1", "-lease-ttl", "5s", "-workers", "1")
	defer func() {
		cancel()
		<-errCh
	}()

	body := `{"kind":"campaign","design":{"cipher":"present80","scheme":"three-in-one"},` +
		`"campaign":{"runs":320,"seed":24696350753,"key":[81985529216486895,33825],` +
		`"faults":[{"sbox":13,"bit":2,"model":"stuck-at-0"}]}}`
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID string `json:"id"`
	}
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit: %s %+v", resp.Status, st)
	}

	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	pr, pw := io.Pipe()
	werrCh := make(chan error, 1)
	go func() {
		werrCh <- run(wctx, []string{"-worker", "-join", base, "-name", "w0", "-chunk-batches", "1"}, pw, io.Discard)
		pw.Close()
	}()
	var mu sync.Mutex
	var lines []string
	linesDone := make(chan struct{})
	go func() {
		defer close(linesDone)
		sc := bufio.NewScanner(pr)
		for sc.Scan() {
			mu.Lock()
			lines = append(lines, sc.Text())
			mu.Unlock()
		}
	}()

	deadline := time.Now().Add(time.Minute)
	for {
		r, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s", base, st.ID))
		if err != nil {
			t.Fatal(err)
		}
		var got struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		json.NewDecoder(r.Body).Decode(&got)
		r.Body.Close()
		if got.State == "done" {
			break
		}
		if got.State == "failed" || time.Now().After(deadline) {
			t.Fatalf("distributed job state %q: %s", got.State, got.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}

	wcancel()
	select {
	case err := <-werrCh:
		if err != nil {
			t.Fatalf("worker exited with %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker did not exit after cancel")
	}
	<-linesDone

	mu.Lock()
	defer mu.Unlock()
	var joined, leased, stopped bool
	for _, l := range lines {
		switch {
		case strings.HasPrefix(l, "sconed: worker joining "):
			joined = true
		case strings.HasPrefix(l, "sconed: lease l") && strings.Contains(l, st.ID):
			leased = true
		case l == "sconed: worker stopped":
			stopped = true
		}
	}
	if !joined || !leased || !stopped {
		t.Fatalf("worker transcript joined=%v leased=%v stopped=%v:\n%s",
			joined, leased, stopped, strings.Join(lines, "\n"))
	}
}

func TestDaemonWorkerFlagValidation(t *testing.T) {
	err := run(context.Background(), []string{"-worker"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-join") {
		t.Fatalf("-worker without -join: %v", err)
	}
	err = run(context.Background(), []string{"-join", "http://127.0.0.1:1"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-worker") {
		t.Fatalf("-join without -worker: %v", err)
	}
}
