// Command sconelint statically audits netlists: structural health
// (floating nets, loops, dead logic) and the countermeasure soundness
// properties of the paper's duplication scheme (λ coverage, ¬λ branch
// duality, comparator coverage, constant nets).
//
// It lints either netlist files in the scone text format:
//
//	sconelint core.nl other.nl
//
// or a core it synthesises on the fly:
//
//	sconelint -cipher present80 -scheme three-in-one -entropy prime
//
// Exit status: 0 clean, 1 findings, 2 usage or I/O error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cipher/gift"
	"repro/internal/cipher/present"
	"repro/internal/core"
	"repro/internal/lint"
	"repro/internal/netlist"
	"repro/internal/spn"
	"repro/internal/synth"
)

// errFindings distinguishes "the lint ran and found problems" (exit 1)
// from usage and I/O errors (exit 2).
var errFindings = errors.New("findings reported")

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		os.Exit(0)
	case errors.Is(err, errFindings):
		os.Exit(1)
	default:
		fmt.Fprintln(os.Stderr, "sconelint:", err)
		os.Exit(2)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sconelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cipher := fs.String("cipher", "present80", "cipher to synthesise when no files are given: present80 or gift64")
	scheme := fs.String("scheme", "three-in-one", "countermeasure scheme: "+core.SchemeVocabulary())
	entropy := fs.String("entropy", "prime", "prime, per-round, per-sbox")
	engine := fs.String("engine", "anf", "S-box synthesis engine: anf or bdd")
	rules := fs.String("rules", "", "comma-separated rule IDs or categories to run (default: all)")
	maxPerRule := fs.Int("max-per-rule", 0, "cap diagnostics kept per rule (0 = unlimited)")
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	summary := fs.Bool("summary", false, "prefix the per-rule summary table")
	list := fs.Bool("list", false, "list the registered rules and exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: sconelint [flags] [netlist.nl ...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, r := range lint.Rules() {
			fmt.Fprintf(stdout, "%-16s %-15s %s\n", r.ID, "("+string(r.Category)+")", r.Doc)
		}
		return nil
	}

	opts := lint.Options{MaxPerRule: *maxPerRule}
	if *rules != "" {
		opts.Rules = strings.Split(*rules, ",")
	}

	var modules []*netlist.Module
	if fs.NArg() > 0 {
		for _, path := range fs.Args() {
			m, err := readModule(path)
			if err != nil {
				return err
			}
			modules = append(modules, m)
		}
	} else {
		m, err := buildModule(*cipher, *scheme, *entropy, *engine)
		if err != nil {
			return err
		}
		modules = append(modules, m)
	}

	clean := true
	for _, m := range modules {
		rep, err := lint.Run(m, opts)
		if err != nil {
			return err
		}
		if *jsonOut {
			if err := rep.WriteJSON(stdout); err != nil {
				return err
			}
		} else if err := rep.WriteText(stdout, *summary); err != nil {
			return err
		}
		clean = clean && rep.Clean()
	}
	if !clean {
		return errFindings
	}
	return nil
}

// readModule loads a netlist file laxly: structurally broken modules are
// exactly what the linter is for.
func readModule(path string) (*netlist.Module, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := netlist.ReadTextLax(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// buildModule synthesises the selected core, mirroring sconenetlist's
// flag vocabulary.
func buildModule(cipher, scheme, entropy, engine string) (*netlist.Module, error) {
	var spec *spn.Spec
	switch cipher {
	case "present80":
		spec = present.Spec()
	case "gift64":
		spec = gift.Spec()
	default:
		return nil, fmt.Errorf("unknown cipher %q", cipher)
	}

	var opts core.Options
	sch, err := core.ParseScheme(scheme)
	if err != nil {
		return nil, err
	}
	opts.Scheme = sch
	switch entropy {
	case "prime":
		opts.Entropy = core.EntropyPrime
	case "per-round":
		opts.Entropy = core.EntropyPerRound
	case "per-sbox":
		opts.Entropy = core.EntropyPerSbox
	default:
		return nil, fmt.Errorf("unknown entropy variant %q", entropy)
	}
	switch engine {
	case "anf":
		opts.Engine = synth.EngineANF
	case "bdd":
		opts.Engine = synth.EngineBDD
	default:
		return nil, fmt.Errorf("unknown engine %q", engine)
	}

	d, err := core.Build(spec, opts)
	if err != nil {
		return nil, fmt.Errorf("build: %w", err)
	}
	return d.Mod, nil
}
