package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"path/filepath"
	"strings"
	"testing"
)

func lintFixture(name string) string {
	return filepath.Join("..", "..", "internal", "lint", "testdata", name)
}

func TestRunHelp(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-h"}, &out, &errb); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(errb.String(), "usage: sconelint") {
		t.Fatalf("help text missing usage line:\n%s", errb.String())
	}
}

func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-list"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	for _, rule := range []string{"floating-net", "lambda-cone", "dual-branch", "detect-coverage"} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("rule %s missing from -list output", rule)
		}
	}
}

func TestRunCleanFile(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{filepath.Join("testdata", "clean.nl")}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean module should print nothing without -summary, got:\n%s", out.String())
	}
}

func TestRunFindingsExit(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{lintFixture("dual_branch.nl")}, &out, &errb)
	if !errors.Is(err, errFindings) {
		t.Fatalf("run returned %v, want errFindings", err)
	}
	if !strings.Contains(out.String(), "dual-branch") {
		t.Fatalf("expected a dual-branch finding, got:\n%s", out.String())
	}
}

func TestRunJSON(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-json", lintFixture("lambda_cone.nl")}, &out, &errb)
	if !errors.Is(err, errFindings) {
		t.Fatalf("run returned %v, want errFindings", err)
	}
	var rep struct {
		Module   string `json:"module"`
		Findings int    `json:"findings"`
		Results  []struct {
			Rule        string `json:"rule"`
			Diagnostics []struct {
				Rule    string `json:"rule"`
				Message string `json:"message"`
			} `json:"diagnostics"`
		} `json:"results"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Module != "lambda_cone" || rep.Findings != 1 {
		t.Fatalf("unexpected report: module=%q findings=%d", rep.Module, rep.Findings)
	}
}

func TestRunSynthesizedCore(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-summary", "-cipher", "present80", "-scheme", "three-in-one", "-entropy", "prime"}
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("protected core must lint clean: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "0 findings") {
		t.Fatalf("summary missing:\n%s", out.String())
	}
}

func TestRunRuleSelection(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-rules", "structural", lintFixture("lambda_cone.nl")}, &out, &errb)
	if err != nil {
		t.Fatalf("structural rules must pass on lambda_cone.nl: %v", err)
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	for _, args := range [][]string{
		{"-cipher", "des"},
		{"-scheme", "quadruple"},
		{"-entropy", "none"},
		{"-engine", "abc"},
		{"-rules", "no-such-rule", lintFixture("dead_gate.nl")},
		{"-bogus"},
		{"no-such-file.nl"},
	} {
		var out, errb bytes.Buffer
		err := run(args, &out, &errb)
		if err == nil || errors.Is(err, errFindings) || errors.Is(err, flag.ErrHelp) {
			t.Fatalf("args %v: err = %v, want a usage error", args, err)
		}
	}
}
