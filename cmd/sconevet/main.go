// Command sconevet runs the repository's custom vet passes (built on
// internal/vetkit, standard library only):
//
//	norand         forbid math/rand outside _test.go and internal/rng
//	cachedcompile  forbid direct sim.Compile outside internal/sim
//	ctxexecute     forbid context-free .Execute( in internal/service and
//	               cmd/sconed (use ExecuteContext/ExecuteBatches)
//	enginecfg      forbid direct engine construction (sim.NewEngine,
//	               core.NewWideRunnerFrom) outside internal/sim,
//	               internal/core and internal/fault (configure
//	               fault.EngineConfig)
//	obsnames       enforce scone_<pkg>_<metric>_<unit> metric names at obs
//	               registration sites
//	provebudget    forbid bare bdd.New in internal/lint and internal/prove
//	               (use bdd.NewWithBudget + bdd.Guarded)
//	v1routes       require /v1/ route patterns in internal/service outside
//	               the legacy-alias shim http_legacy.go
//
// Usage:
//
//	sconevet [-list] [module-root]
//
// Exit status: 0 clean, 1 findings, 2 usage or parse error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/vetkit"
)

var errFindings = errors.New("findings reported")

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		os.Exit(0)
	case errors.Is(err, errFindings):
		os.Exit(1)
	default:
		fmt.Fprintln(os.Stderr, "sconevet:", err)
		os.Exit(2)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sconevet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: sconevet [flags] [module-root]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, a := range vetkit.Analyzers() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return nil
	}
	root := "."
	switch fs.NArg() {
	case 0:
	case 1:
		root = fs.Arg(0)
	default:
		return fmt.Errorf("at most one module root, got %d args", fs.NArg())
	}

	diags, err := vetkit.Run(root, vetkit.Analyzers())
	if err != nil {
		return err
	}
	for i := range diags {
		fmt.Fprintln(stdout, diags[i].String())
	}
	if len(diags) > 0 {
		return errFindings
	}
	return nil
}
