package main

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunHelp(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-h"}, &out, &errb); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
}

func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-list"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	for _, a := range []string{"norand", "cachedcompile"} {
		if !strings.Contains(out.String(), a) {
			t.Errorf("analyzer %s missing from -list output", a)
		}
	}
}

func TestRunRepoClean(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{filepath.Join("..", "..")}, &out, &errb); err != nil {
		t.Fatalf("repository must be sconevet-clean: %v\n%s", err, out.String())
	}
}

func TestRunFindingsExit(t *testing.T) {
	root := t.TempDir()
	src := "package p\n\nimport \"math/rand\"\n\nvar _ = rand.Int\n"
	if err := os.WriteFile(filepath.Join(root, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	err := run([]string{root}, &out, &errb)
	if !errors.Is(err, errFindings) {
		t.Fatalf("run returned %v, want errFindings", err)
	}
	if !strings.Contains(out.String(), "norand") {
		t.Fatalf("expected a norand finding, got:\n%s", out.String())
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	for _, args := range [][]string{
		{"-bogus"},
		{"a", "b"},
		{"no-such-dir"},
	} {
		var out, errb bytes.Buffer
		err := run(args, &out, &errb)
		if err == nil || errors.Is(err, errFindings) || errors.Is(err, flag.ErrHelp) {
			t.Fatalf("args %v: err = %v, want a usage error", args, err)
		}
	}
}
