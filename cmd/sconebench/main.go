// Command sconebench runs the PRESENT-80 fault-campaign benchmark suite
// across the paper's three λ-entropy variants and writes a machine-readable
// report. It is the perf-trajectory anchor for the observability work: the
// numbers in BENCH_PR8.json are produced with the obs registry enabled, so
// instrument overhead is part of what is measured.
//
// Usage:
//
//	sconebench [-runs 16384] [-seed 0x5C09E2021] [-workers N]
//	           [-short] [-o BENCH_PR8.json]
//
// For each entropy variant (prime, per-round, per-sbox) the suite runs one
// three-in-one campaign — stuck-at-0 on S-box 13 bit 2 in the last round,
// the Figure 4 fault — and reports runs/sec, ns per simulator eval and heap
// allocations per run. The eval count comes from the simulator's own
// scone_sim_evals_total counter, so the benchmark doubles as an end-to-end
// check of the metrics plumbing. A final multi-fault row times a k=2 plan
// sweep over one S-box column — the planning layer's per-placement overhead
// on top of the raw campaign engine.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/spn"
)

// benchKey is the device key shared with the attack matrix and the
// service's campaign defaults.
var benchKey = spn.KeyState{0x0123456789ABCDEF, 0x8421}

// benchSbox/benchBit pin the faulted S-box input line (the Figure 4 site).
const (
	benchSbox = 13
	benchBit  = 2
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "sconebench:", err)
		os.Exit(1)
	}
}

// variantReport is one entropy variant's measurement.
type variantReport struct {
	Entropy string `json:"entropy"`
	// Campaign pins the outcome tallies so a perf run doubles as a
	// determinism check: same seed, same tallies, every time.
	Campaign   service.CampaignResult `json:"campaign"`
	ElapsedNS  int64                  `json:"elapsed_ns"`
	RunsPerSec float64                `json:"runs_per_sec"`
	Evals      int64                  `json:"evals"`
	NSPerEval  float64                `json:"ns_per_eval"`
	// AllocsPerRun is the heap-allocation count per simulated run,
	// measured over the whole campaign (workers included).
	AllocsPerRun float64 `json:"allocs_per_run"`
	BytesPerRun  float64 `json:"bytes_per_run"`
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sconebench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runs := fs.Int("runs", 16384, "simulated encryptions per variant")
	seed := fs.Uint64("seed", 0x5C09E2021, "campaign seed")
	workers := fs.Int("workers", 0, "worker goroutines per campaign (0 = GOMAXPROCS)")
	short := fs.Bool("short", false, "shrink the suite for CI (2048 runs per variant)")
	out := fs.String("o", "BENCH_PR8.json", "report path (\"-\" writes the JSON to stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *short {
		*runs = 2048
	}
	if *runs <= 0 {
		return fmt.Errorf("-runs must be positive (got %d)", *runs)
	}

	// The suite benchmarks the instrumented path: evals are read back from
	// the simulator's own counter (registration is idempotent, so this
	// returns the instrument sim just registered).
	reg := obs.NewRegistry()
	sim.EnableObservability(reg)
	fault.EnableObservability(reg)
	plan.EnableObservability(reg)
	evals := reg.NewCounter("scone_sim_evals_total", "simulator eval calls")

	variants := []string{"prime", "per-round", "per-sbox"}
	reports := make([]variantReport, 0, len(variants))
	for _, entropy := range variants {
		rep, err := benchVariant(entropy, *runs, *seed, *workers, evals)
		if err != nil {
			return err
		}
		reports = append(reports, rep)
		if *out != "-" {
			fmt.Fprintf(stdout, "%-10s %10.0f runs/s  %8.1f ns/eval  %6.1f allocs/run  (%s)\n",
				entropy, rep.RunsPerSec, rep.NSPerEval, rep.AllocsPerRun,
				time.Duration(rep.ElapsedNS).Round(time.Millisecond))
		}
	}

	mf, err := benchMultiFault(*runs, *seed, *workers)
	if err != nil {
		return err
	}
	if *out != "-" {
		fmt.Fprintf(stdout, "%-10s %10.0f runs/s  %4d placements  (%s)\n",
			"multifault", mf.RunsPerSec, mf.Placements,
			time.Duration(mf.ElapsedNS).Round(time.Millisecond))
	}

	doc := map[string]any{
		"bench":      "present80-campaign-suite",
		"spec":       "present80",
		"scheme":     "three-in-one",
		"runs":       *runs,
		"seed":       service.U64(*seed),
		"go":         runtime.Version(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"variants":   reports,
		"multifault": mf,
	}
	if *out == "-" {
		return service.WriteJSON(stdout, doc)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := service.WriteJSON(f, doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", *out)
	return nil
}

// multiFaultReport is the k=2 plan-sweep measurement: every pair of fault
// points in one S-box column, each pair its own campaign, outcome tallies
// folded so the row doubles as a determinism pin like the variant rows.
type multiFaultReport struct {
	K           int                    `json:"k"`
	Sites       int                    `json:"sites"`
	Placements  int                    `json:"placements"`
	RunsPerPair int                    `json:"runs_per_pair"`
	Totals      service.CampaignResult `json:"totals"`
	ElapsedNS   int64                  `json:"elapsed_ns"`
	RunsPerSec  float64                `json:"runs_per_sec"`
}

// benchMultiFault times the planning layer end to end: plan.New over the
// benchmark S-box column, then one campaign per tuple through the same
// engine the variant rows use. runs is split across the placements so the
// row's total simulation work matches one variant row.
func benchMultiFault(runs int, seed uint64, workers int) (multiFaultReport, error) {
	d, err := service.BuildDesign(service.DesignSpec{
		Cipher:  "present80",
		Scheme:  "three-in-one",
		Entropy: "prime",
	})
	if err != nil {
		return multiFaultReport{}, err
	}
	p, err := plan.New(d, plan.Request{K: 2, Sboxes: []int{benchSbox}})
	if err != nil {
		return multiFaultReport{}, err
	}
	perPair := runs / len(p.Tuples)
	if perPair < sim.Lanes {
		perPair = sim.Lanes
	}
	var total service.CampaignResult
	start := time.Now()
	for _, tuple := range p.Tuples {
		camp := fault.Campaign{
			Design:  d,
			Key:     benchKey,
			Faults:  p.Faults(tuple, fault.StuckAt0, d.LastRoundCycle()),
			Runs:    perPair,
			Seed:    seed,
			Workers: workers,
		}
		res, err := camp.Execute(nil)
		if err != nil {
			return multiFaultReport{}, err
		}
		total.Add(res)
	}
	elapsed := time.Since(start)
	return multiFaultReport{
		K:           p.K,
		Sites:       len(p.Sites),
		Placements:  len(p.Tuples),
		RunsPerPair: perPair,
		Totals:      total,
		ElapsedNS:   elapsed.Nanoseconds(),
		RunsPerSec:  float64(perPair*len(p.Tuples)) / elapsed.Seconds(),
	}, nil
}

// benchVariant builds the three-in-one PRESENT-80 design with the given
// entropy mode and times one campaign over it.
func benchVariant(entropy string, runs int, seed uint64, workers int, evals *obs.Counter) (variantReport, error) {
	d, err := service.BuildDesign(service.DesignSpec{
		Cipher:  "present80",
		Scheme:  "three-in-one",
		Entropy: entropy,
	})
	if err != nil {
		return variantReport{}, err
	}
	net := d.SboxInputNet(core.BranchActual, benchSbox, benchBit)
	camp := fault.Campaign{
		Design:  d,
		Key:     benchKey,
		Faults:  []fault.Fault{fault.At(net, fault.StuckAt0, d.LastRoundCycle())},
		Runs:    runs,
		Seed:    seed,
		Workers: workers,
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	evalsBefore := evals.Value()
	start := time.Now()
	res, err := camp.Execute(nil)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return variantReport{}, err
	}

	evalCount := evals.Value() - evalsBefore
	rep := variantReport{
		Entropy:      entropy,
		Campaign:     service.NewCampaignResult(res),
		ElapsedNS:    elapsed.Nanoseconds(),
		RunsPerSec:   float64(runs) / elapsed.Seconds(),
		Evals:        evalCount,
		AllocsPerRun: float64(after.Mallocs-before.Mallocs) / float64(runs),
		BytesPerRun:  float64(after.TotalAlloc-before.TotalAlloc) / float64(runs),
	}
	if evalCount > 0 {
		rep.NSPerEval = float64(elapsed.Nanoseconds()) / float64(evalCount)
	}
	return rep, nil
}
