// Command sconebench runs the PRESENT-80 fault-campaign scaling suite and
// writes a machine-readable report. It is the perf-trajectory anchor for
// the engine-configuration work: a scaling matrix sweeps lane widths ×
// worker parallelism × dispatch batch sizes over one campaign, proves every
// cell computes bit-identical tallies, and selects the fastest
// configuration; the per-variant and multi-fault rows then run at that
// configuration. The numbers in BENCH_PR10.json are produced with the obs
// registry enabled, so instrument overhead is part of what is measured.
//
// Usage:
//
//	sconebench [-runs 16384] [-seed 0x5C09E2021] [-short]
//	           [-lanes W] [-parallel N] [-batch-runs R]
//	           [-o BENCH_PR10.json]
//
// The scaling matrix always runs in full. The engine flags, when set
// explicitly, pin the configuration of the variant and multi-fault rows
// instead of the matrix winner — for comparing a chosen configuration
// against the best one.
//
// For each entropy variant (prime, per-round, per-sbox) the suite runs one
// three-in-one campaign — stuck-at-0 on S-box 13 bit 2 in the last round,
// the Figure 4 fault — and reports runs/sec, ns per simulator eval and heap
// allocations per run. The eval count comes from the simulator's own
// scone_sim_evals_total counter, so the benchmark doubles as an end-to-end
// check of the metrics plumbing. A final multi-fault row times a k=2 plan
// sweep over one S-box column — the planning layer's per-placement overhead
// on top of the raw campaign engine.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/leakage"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/power"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/spn"
)

// benchKey is the device key shared with the attack matrix and the
// service's campaign defaults.
var benchKey = spn.KeyState{0x0123456789ABCDEF, 0x8421}

// benchSbox/benchBit pin the faulted S-box input line (the Figure 4 site).
const (
	benchSbox = 13
	benchBit  = 2
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "sconebench:", err)
		os.Exit(1)
	}
}

// scalingCell is one scaling-matrix measurement: the prime-variant campaign
// under one engine configuration.
type scalingCell struct {
	LaneWords   int     `json:"lane_words"`
	Parallelism int     `json:"parallelism"`
	BatchRuns   int     `json:"batch_runs"`
	ElapsedNS   int64   `json:"elapsed_ns"`
	RunsPerSec  float64 `json:"runs_per_sec"`
}

// scalingReport is the matrix plus its verdict: every cell's tallies were
// bit-identical (Campaign pins them), Best won, and Speedup is Best over
// the legacy single-word single-worker one-group cell.
type scalingReport struct {
	Matrix []scalingCell `json:"matrix"`
	// Campaign pins the outcome tallies shared by every matrix cell: the
	// suite fails if any configuration diverges, so the report doubles as
	// a determinism proof.
	Campaign service.CampaignResult `json:"campaign"`
	Baseline scalingCell            `json:"baseline"`
	Best     scalingCell            `json:"best"`
	Speedup  float64                `json:"speedup"`
}

// variantReport is one entropy variant's measurement.
type variantReport struct {
	Entropy string `json:"entropy"`
	// Campaign pins the outcome tallies so a perf run doubles as a
	// determinism check: same seed, same tallies, every time.
	Campaign   service.CampaignResult `json:"campaign"`
	ElapsedNS  int64                  `json:"elapsed_ns"`
	RunsPerSec float64                `json:"runs_per_sec"`
	Evals      int64                  `json:"evals"`
	NSPerEval  float64                `json:"ns_per_eval"`
	// AllocsPerRun is the heap-allocation count per simulated run,
	// measured over the whole campaign (workers included).
	AllocsPerRun float64 `json:"allocs_per_run"`
	BytesPerRun  float64 `json:"bytes_per_run"`
}

// matrixDims returns the swept engine-configuration axes: every supported
// lane width, deduplicated worker counts up to the machine's cores, and
// three dispatch granularities.
func matrixDims() (widths, parallels, batchRuns []int) {
	widths = []int{1, 2, 4}
	for _, p := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		seen := false
		for _, q := range parallels {
			seen = seen || q == p
		}
		if !seen && p >= 1 {
			parallels = append(parallels, p)
		}
	}
	batchRuns = []int{sim.Lanes, 1024, 4096}
	return widths, parallels, batchRuns
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sconebench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runs := fs.Int("runs", 16384, "simulated encryptions per variant and matrix cell")
	seed := fs.Uint64("seed", 0x5C09E2021, "campaign seed")
	short := fs.Bool("short", false, "shrink the suite for CI (2048 runs per variant)")
	out := fs.String("o", "BENCH_PR10.json", "report path (\"-\" writes the JSON to stdout)")
	engine := cliflags.RegisterEngine(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *short {
		*runs = 2048
	}
	if *runs <= 0 {
		return fmt.Errorf("-runs must be positive (got %d)", *runs)
	}
	engineCfg, err := engine.Config()
	if err != nil {
		return err
	}
	enginePinned := false
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "lanes", "parallel", "batch-runs":
			enginePinned = true
		}
	})

	// The suite benchmarks the instrumented path: evals are read back from
	// the simulator's own counter (registration is idempotent, so this
	// returns the instrument sim just registered).
	reg := obs.NewRegistry()
	sim.EnableObservability(reg)
	fault.EnableObservability(reg)
	plan.EnableObservability(reg)
	leakage.EnableObservability(reg)
	evals := reg.NewCounter("scone_sim_evals_total", "simulator eval calls")

	scaling, err := benchScaling(*runs, *seed)
	if err != nil {
		return err
	}
	if *out != "-" {
		for _, cell := range scaling.Matrix {
			fmt.Fprintf(stdout, "scale w=%d p=%d b=%-5d %10.0f runs/s  (%s)\n",
				cell.LaneWords, cell.Parallelism, cell.BatchRuns, cell.RunsPerSec,
				time.Duration(cell.ElapsedNS).Round(time.Millisecond))
		}
		fmt.Fprintf(stdout, "best  w=%d p=%d b=%-5d %10.0f runs/s  %.2fx over legacy\n",
			scaling.Best.LaneWords, scaling.Best.Parallelism, scaling.Best.BatchRuns,
			scaling.Best.RunsPerSec, scaling.Speedup)
	}

	// The variant and multi-fault rows run at the matrix winner unless an
	// engine flag pinned the configuration explicitly.
	if !enginePinned {
		engineCfg = fault.EngineConfig{
			LaneWords:   scaling.Best.LaneWords,
			Parallelism: scaling.Best.Parallelism,
			BatchRuns:   scaling.Best.BatchRuns,
		}
	}

	variants := []string{"prime", "per-round", "per-sbox"}
	reports := make([]variantReport, 0, len(variants))
	for _, entropy := range variants {
		rep, err := benchVariant(entropy, *runs, *seed, engineCfg, evals)
		if err != nil {
			return err
		}
		reports = append(reports, rep)
		if *out != "-" {
			fmt.Fprintf(stdout, "%-10s %10.0f runs/s  %8.1f ns/eval  %6.1f allocs/run  (%s)\n",
				entropy, rep.RunsPerSec, rep.NSPerEval, rep.AllocsPerRun,
				time.Duration(rep.ElapsedNS).Round(time.Millisecond))
		}
	}
	if reports[0].Campaign != scaling.Campaign {
		return fmt.Errorf("prime variant tallies %+v diverge from scaling matrix %+v",
			reports[0].Campaign, scaling.Campaign)
	}

	mf, err := benchMultiFault(*runs, *seed, engineCfg)
	if err != nil {
		return err
	}
	if *out != "-" {
		fmt.Fprintf(stdout, "%-10s %10.0f runs/s  %4d placements  (%s)\n",
			"multifault", mf.RunsPerSec, mf.Placements,
			time.Duration(mf.ElapsedNS).Round(time.Millisecond))
	}

	// The leakage rows time the TVLA evaluator over the unmasked and masked
	// cores; the verdicts double as a correctness pin (the unmasked core
	// must leak, the masked one must not). The floor keeps the t-test
	// populated enough for a stable verdict at tiny -runs.
	pairs := *runs / 8
	if pairs < 128 {
		pairs = 128
	}
	leaks := make([]leakageReport, 0, 2)
	for _, scheme := range []core.Scheme{core.SchemeThreeInOne, core.SchemeMaskedDup} {
		rep, err := benchLeakage(scheme, pairs, *seed)
		if err != nil {
			return err
		}
		leaks = append(leaks, rep)
		if *out != "-" {
			fmt.Fprintf(stdout, "leak %-12s %10.0f traces/s  max|t|=%6.1f leaks=%-5v  (%s)\n",
				rep.Scheme, rep.TracesPerSec, rep.MaxAbsT, rep.Leaks,
				time.Duration(rep.ElapsedNS).Round(time.Millisecond))
		}
	}
	if !leaks[0].Leaks || leaks[1].Leaks {
		return fmt.Errorf("leakage verdicts inverted: %+v", leaks)
	}

	doc := map[string]any{
		"bench":      "present80-scaling-suite",
		"spec":       "present80",
		"scheme":     core.SchemeWire(core.SchemeThreeInOne),
		"runs":       *runs,
		"seed":       service.U64(*seed),
		"go":         runtime.Version(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"engine": map[string]any{
			"lane_words":  engineCfg.LaneWords,
			"parallelism": engineCfg.Parallelism,
			"batch_runs":  engineCfg.BatchRuns,
			"pinned":      enginePinned,
		},
		"scaling":    scaling,
		"variants":   reports,
		"multifault": mf,
		"leakage":    leaks,
	}
	if *out == "-" {
		return service.WriteJSON(stdout, doc)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := service.WriteJSON(f, doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", *out)
	return nil
}

// benchCampaign builds the Figure 4 prime-variant campaign under the given
// engine configuration.
func benchCampaign(d *core.Design, runs int, seed uint64, cfg fault.EngineConfig) fault.Campaign {
	net := d.SboxInputNet(core.BranchActual, benchSbox, benchBit)
	return fault.Campaign{
		Design: d,
		Key:    benchKey,
		Faults: []fault.Fault{fault.At(net, fault.StuckAt0, d.LastRoundCycle())},
		Runs:   runs,
		Seed:   seed,
		Engine: cfg,
	}
}

// benchScaling sweeps the engine-configuration matrix over one campaign and
// verifies every cell computes bit-identical tallies. The baseline cell is
// the legacy configuration (width 1, one worker, one lane group per
// dispatch); the best cell wins on runs/sec.
func benchScaling(runs int, seed uint64) (scalingReport, error) {
	d, err := service.BuildDesign(service.DesignSpec{
		Cipher:  "present80",
		Scheme:  core.SchemeWire(core.SchemeThreeInOne),
		Entropy: "prime",
	})
	if err != nil {
		return scalingReport{}, err
	}
	widths, parallels, batchRuns := matrixDims()
	var rep scalingReport
	for _, w := range widths {
		for _, p := range parallels {
			for _, br := range batchRuns {
				camp := benchCampaign(d, runs, seed, fault.EngineConfig{
					LaneWords: w, Parallelism: p, BatchRuns: br,
				})
				start := time.Now()
				res, err := camp.Execute(nil)
				elapsed := time.Since(start)
				if err != nil {
					return scalingReport{}, err
				}
				tallies := service.NewCampaignResult(res)
				if len(rep.Matrix) == 0 {
					rep.Campaign = tallies
				} else if tallies != rep.Campaign {
					return scalingReport{}, fmt.Errorf(
						"w=%d p=%d b=%d tallies %+v diverge from %+v",
						w, p, br, tallies, rep.Campaign)
				}
				cell := scalingCell{
					LaneWords:   w,
					Parallelism: p,
					BatchRuns:   br,
					ElapsedNS:   elapsed.Nanoseconds(),
					RunsPerSec:  float64(runs) / elapsed.Seconds(),
				}
				rep.Matrix = append(rep.Matrix, cell)
				if cell.LaneWords == 1 && cell.Parallelism == 1 && cell.BatchRuns == sim.Lanes {
					rep.Baseline = cell
				}
				if cell.RunsPerSec > rep.Best.RunsPerSec {
					rep.Best = cell
				}
			}
		}
	}
	if rep.Baseline.RunsPerSec > 0 {
		rep.Speedup = rep.Best.RunsPerSec / rep.Baseline.RunsPerSec
	}
	return rep, nil
}

// multiFaultReport is the k=2 plan-sweep measurement: every pair of fault
// points in one S-box column, each pair its own campaign, outcome tallies
// folded so the row doubles as a determinism pin like the variant rows.
type multiFaultReport struct {
	K           int                    `json:"k"`
	Sites       int                    `json:"sites"`
	Placements  int                    `json:"placements"`
	RunsPerPair int                    `json:"runs_per_pair"`
	Totals      service.CampaignResult `json:"totals"`
	ElapsedNS   int64                  `json:"elapsed_ns"`
	RunsPerSec  float64                `json:"runs_per_sec"`
}

// benchMultiFault times the planning layer end to end: plan.New over the
// benchmark S-box column, then one campaign per tuple through the same
// engine the variant rows use. runs is split across the placements so the
// row's total simulation work matches one variant row.
func benchMultiFault(runs int, seed uint64, cfg fault.EngineConfig) (multiFaultReport, error) {
	d, err := service.BuildDesign(service.DesignSpec{
		Cipher:  "present80",
		Scheme:  core.SchemeWire(core.SchemeThreeInOne),
		Entropy: "prime",
	})
	if err != nil {
		return multiFaultReport{}, err
	}
	p, err := plan.New(d, plan.Request{K: 2, Sboxes: []int{benchSbox}})
	if err != nil {
		return multiFaultReport{}, err
	}
	perPair := runs / len(p.Tuples)
	if perPair < sim.Lanes {
		perPair = sim.Lanes
	}
	var total service.CampaignResult
	start := time.Now()
	for _, tuple := range p.Tuples {
		camp := fault.Campaign{
			Design: d,
			Key:    benchKey,
			Faults: p.Faults(tuple, fault.StuckAt0, d.LastRoundCycle()),
			Runs:   perPair,
			Seed:   seed,
			Engine: cfg,
		}
		res, err := camp.Execute(nil)
		if err != nil {
			return multiFaultReport{}, err
		}
		total.Add(res)
	}
	elapsed := time.Since(start)
	return multiFaultReport{
		K:           p.K,
		Sites:       len(p.Sites),
		Placements:  len(p.Tuples),
		RunsPerPair: perPair,
		Totals:      total,
		ElapsedNS:   elapsed.Nanoseconds(),
		RunsPerSec:  float64(perPair*len(p.Tuples)) / elapsed.Seconds(),
	}, nil
}

// benchVariant builds the three-in-one PRESENT-80 design with the given
// entropy mode and times one campaign over it under the selected engine
// configuration.
func benchVariant(entropy string, runs int, seed uint64, cfg fault.EngineConfig, evals *obs.Counter) (variantReport, error) {
	d, err := service.BuildDesign(service.DesignSpec{
		Cipher:  "present80",
		Scheme:  core.SchemeWire(core.SchemeThreeInOne),
		Entropy: entropy,
	})
	if err != nil {
		return variantReport{}, err
	}
	camp := benchCampaign(d, runs, seed, cfg)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	evalsBefore := evals.Value()
	start := time.Now()
	res, err := camp.Execute(nil)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return variantReport{}, err
	}

	evalCount := evals.Value() - evalsBefore
	rep := variantReport{
		Entropy:      entropy,
		Campaign:     service.NewCampaignResult(res),
		ElapsedNS:    elapsed.Nanoseconds(),
		RunsPerSec:   float64(runs) / elapsed.Seconds(),
		Evals:        evalCount,
		AllocsPerRun: float64(after.Mallocs-before.Mallocs) / float64(runs),
		BytesPerRun:  float64(after.TotalAlloc-before.TotalAlloc) / float64(runs),
	}
	if evalCount > 0 {
		rep.NSPerEval = float64(elapsed.Nanoseconds()) / float64(evalCount)
	}
	return rep, nil
}

// leakageReport is one TVLA evaluator measurement: the fixed-vs-random
// sweep over one scheme, with the verdict pinned so a perf run doubles as
// a first-order leakage check.
type leakageReport struct {
	Scheme       string  `json:"scheme"`
	Model        string  `json:"model"`
	Pairs        int     `json:"pairs"`
	MaxAbsT      float64 `json:"max_abs_t"`
	Leaks        bool    `json:"leaks"`
	ElapsedNS    int64   `json:"elapsed_ns"`
	TracesPerSec float64 `json:"traces_per_sec"`
}

// benchLeakage times the trace-collection plus t-test pipeline end to end
// over the given scheme under the Hamming-distance model.
func benchLeakage(scheme core.Scheme, pairs int, seed uint64) (leakageReport, error) {
	d, err := service.BuildDesign(service.DesignSpec{
		Cipher:  "present80",
		Scheme:  core.SchemeWire(scheme),
		Entropy: "prime",
	})
	if err != nil {
		return leakageReport{}, err
	}
	ev, err := leakage.New(leakage.Config{
		Design:  d,
		Key:     benchKey,
		Model:   power.HammingDistance,
		Pairs:   pairs,
		Seed:    seed,
		FixedPT: 0x0123456789ABCDEF,
	})
	if err != nil {
		return leakageReport{}, err
	}
	start := time.Now()
	for !ev.Done() {
		ev.Step()
	}
	elapsed := time.Since(start)
	res := ev.Result()
	return leakageReport{
		Scheme:       core.SchemeWire(scheme),
		Model:        res.Model,
		Pairs:        res.Pairs,
		MaxAbsT:      res.MaxAbsT,
		Leaks:        res.Leaks,
		ElapsedNS:    elapsed.Nanoseconds(),
		TracesPerSec: float64(res.Fixed+res.Random+res.Discarded) / elapsed.Seconds(),
	}, nil
}
