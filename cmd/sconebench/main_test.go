package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/service"
)

// The suite must produce a parseable report with the scaling matrix, one
// measurement per entropy variant, and the seed-determined tallies.
func TestBenchWritesReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_PR10.json")
	var out, errb bytes.Buffer
	if err := run([]string{"-runs", "192", "-o", path}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	if !strings.Contains(out.String(), "wrote "+path) {
		t.Fatalf("missing confirmation line:\n%s", out.String())
	}

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Bench  string      `json:"bench"`
		Runs   int         `json:"runs"`
		Seed   service.U64 `json:"seed"`
		Engine struct {
			LaneWords   int  `json:"lane_words"`
			Parallelism int  `json:"parallelism"`
			Pinned      bool `json:"pinned"`
		} `json:"engine"`
		Scaling struct {
			Matrix []struct {
				LaneWords  int     `json:"lane_words"`
				RunsPerSec float64 `json:"runs_per_sec"`
			} `json:"matrix"`
			Campaign service.CampaignResult `json:"campaign"`
			Speedup  float64                `json:"speedup"`
		} `json:"scaling"`
		Variants []struct {
			Entropy    string                 `json:"entropy"`
			Campaign   service.CampaignResult `json:"campaign"`
			RunsPerSec float64                `json:"runs_per_sec"`
			Evals      int64                  `json:"evals"`
			NSPerEval  float64                `json:"ns_per_eval"`
		} `json:"variants"`
		Leakage []struct {
			Scheme       string  `json:"scheme"`
			Pairs        int     `json:"pairs"`
			MaxAbsT      float64 `json:"max_abs_t"`
			Leaks        bool    `json:"leaks"`
			TracesPerSec float64 `json:"traces_per_sec"`
		} `json:"leakage"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, b)
	}
	if doc.Bench != "present80-scaling-suite" || doc.Runs != 192 || doc.Seed != 0x5C09E2021 {
		t.Fatalf("envelope %+v", doc)
	}
	if doc.Engine.Pinned || doc.Engine.LaneWords == 0 {
		t.Fatalf("engine section %+v: want unpinned matrix winner", doc.Engine)
	}

	// Three lane widths at minimum one parallelism and three batch sizes.
	widths, parallels, batchRuns := matrixDims()
	if want := len(widths) * len(parallels) * len(batchRuns); len(doc.Scaling.Matrix) != want {
		t.Fatalf("scaling matrix has %d cells, want %d", len(doc.Scaling.Matrix), want)
	}
	if doc.Scaling.Campaign.Total != 192 || doc.Scaling.Speedup <= 0 {
		t.Fatalf("scaling verdict %+v", doc.Scaling)
	}
	for i, cell := range doc.Scaling.Matrix {
		if cell.RunsPerSec <= 0 {
			t.Errorf("matrix cell %d has no throughput: %+v", i, cell)
		}
	}

	if len(doc.Variants) != 3 {
		t.Fatalf("expected 3 entropy variants, got %d", len(doc.Variants))
	}
	for i, want := range []string{"prime", "per-round", "per-sbox"} {
		v := doc.Variants[i]
		if v.Entropy != want {
			t.Errorf("variant %d entropy %q, want %q", i, v.Entropy, want)
		}
		if v.Campaign.Total != 192 {
			t.Errorf("variant %s total %d, want 192", v.Entropy, v.Campaign.Total)
		}
		if v.RunsPerSec <= 0 || v.Evals <= 0 || v.NSPerEval <= 0 {
			t.Errorf("variant %s has empty measurements: %+v", v.Entropy, v)
		}
	}
	// The prime variant re-ran the matrix campaign at the winning
	// configuration; its tallies must match the matrix pin.
	if doc.Variants[0].Campaign != doc.Scaling.Campaign {
		t.Errorf("prime tallies %+v diverge from scaling matrix %+v",
			doc.Variants[0].Campaign, doc.Scaling.Campaign)
	}

	// The leakage rows pin the TVLA verdicts: unmasked leaks, masked holds.
	if len(doc.Leakage) != 2 {
		t.Fatalf("expected 2 leakage rows, got %d", len(doc.Leakage))
	}
	if doc.Leakage[0].Scheme != "three-in-one" || !doc.Leakage[0].Leaks {
		t.Errorf("unmasked leakage row %+v, want a leaking three-in-one", doc.Leakage[0])
	}
	if doc.Leakage[1].Scheme != "masked" || doc.Leakage[1].Leaks {
		t.Errorf("masked leakage row %+v, want a passing masked core", doc.Leakage[1])
	}
	for _, row := range doc.Leakage {
		if row.Pairs < 128 || row.TracesPerSec <= 0 {
			t.Errorf("leakage row has empty measurements: %+v", row)
		}
	}
}

// Explicit engine flags pin the variant rows' configuration instead of the
// matrix winner.
func TestBenchEngineFlagsPin(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-runs", "64", "-lanes", "2", "-parallel", "1", "-o", "-"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	var doc struct {
		Engine struct {
			LaneWords   int  `json:"lane_words"`
			Parallelism int  `json:"parallelism"`
			Pinned      bool `json:"pinned"`
		} `json:"engine"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("stdout is not pure JSON: %v\n%s", err, out.String())
	}
	if !doc.Engine.Pinned || doc.Engine.LaneWords != 2 || doc.Engine.Parallelism != 1 {
		t.Fatalf("engine section %+v, want pinned w=2 p=1", doc.Engine)
	}
}

// "-o -" streams the JSON to stdout with no human chatter mixed in.
func TestBenchStdout(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-runs", "64", "-o", "-"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	var doc map[string]any
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("stdout is not pure JSON: %v\n%s", err, out.String())
	}
}

func TestBenchRejectsBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-runs", "0"}, &out, &errb); err == nil {
		t.Fatal("zero run count accepted")
	}
	if err := run([]string{"stray"}, &out, &errb); err == nil {
		t.Fatal("positional argument accepted")
	}
	if err := run([]string{"-bogus"}, &out, &errb); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-lanes", "3"}, &out, &errb); err == nil {
		t.Fatal("invalid lane width accepted")
	}
}
