// Command sconearea regenerates the area tables of the paper's evaluation:
// Table II (full PRESENT-80 cores) and Table III (duplicated S-box
// layers), plus the entropy-variant and synthesis-engine ablations.
//
// Usage:
//
//	sconearea [-table 2|3|all] [-engine anf|bdd] [-ablations]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "sconearea:", err)
		os.Exit(2)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sconearea", flag.ContinueOnError)
	fs.SetOutput(stderr)
	table := fs.String("table", "all", "which table to print: 2, 3 or all")
	engine := fs.String("engine", "anf", "S-box synthesis engine for Table II: anf or bdd")
	ablations := fs.Bool("ablations", false, "also print the entropy-variant and engine ablations")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var eng synth.Engine
	switch *engine {
	case "anf":
		eng = synth.EngineANF
	case "bdd":
		eng = synth.EngineBDD
	default:
		return fmt.Errorf("unknown engine %q", *engine)
	}

	switch *table {
	case "2", "3", "all":
	default:
		return fmt.Errorf("unknown table %q", *table)
	}
	if *table == "2" || *table == "all" {
		fmt.Fprintln(stdout, experiments.RunTableII(eng))
	}
	if *table == "3" || *table == "all" {
		fmt.Fprintln(stdout, experiments.RunTableIII())
	}
	if *ablations {
		fmt.Fprintln(stdout, experiments.RunEntropyAblation())
		fmt.Fprintln(stdout, experiments.RunEngineAblation())
	}
	return nil
}
