// Command sconearea regenerates the area tables of the paper's evaluation:
// Table II (full PRESENT-80 cores) and Table III (duplicated S-box
// layers), plus the entropy-variant and synthesis-engine ablations.
//
// Usage:
//
//	sconearea [-table 2|3|all] [-engine anf|bdd] [-ablations]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/synth"
)

func main() {
	table := flag.String("table", "all", "which table to print: 2, 3 or all")
	engine := flag.String("engine", "anf", "S-box synthesis engine for Table II: anf or bdd")
	ablations := flag.Bool("ablations", false, "also print the entropy-variant and engine ablations")
	flag.Parse()

	var eng synth.Engine
	switch *engine {
	case "anf":
		eng = synth.EngineANF
	case "bdd":
		eng = synth.EngineBDD
	default:
		fmt.Fprintf(os.Stderr, "sconearea: unknown engine %q\n", *engine)
		os.Exit(2)
	}

	if *table == "2" || *table == "all" {
		fmt.Println(experiments.RunTableII(eng))
	}
	if *table == "3" || *table == "all" {
		fmt.Println(experiments.RunTableIII())
	}
	if *ablations {
		fmt.Println(experiments.RunEntropyAblation())
		fmt.Println(experiments.RunEngineAblation())
	}
}
