package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTable3(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-table", "3"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	if !strings.Contains(out.String(), "GE") {
		t.Fatalf("expected area table in output, got:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-engine", "yosys"}, &out, &errb); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if err := run([]string{"-table", "7"}, &out, &errb); err == nil {
		t.Fatal("unknown table accepted")
	}
	if err := run([]string{"-no-such-flag"}, &out, &errb); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
