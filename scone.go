package scone

import (
	"repro/internal/attack"
	"repro/internal/cipher/gift"
	"repro/internal/cipher/present"
	"repro/internal/cipher/scone64"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/rng"
	"repro/internal/service"
	"repro/internal/spn"
	"repro/internal/stdcell"
	"repro/internal/synth"
)

// Cipher description layer.
type (
	// Spec describes an SPN cipher; see PresentSpec and GiftSpec for
	// ready-made instances.
	Spec = spn.Spec
	// KeyState holds a cipher key of up to 128 bits (word 0 = bits
	// 0..63).
	KeyState = spn.KeyState
)

// PresentSpec returns the PRESENT-80 description used throughout the
// paper's evaluation.
func PresentSpec() *Spec { return present.Spec() }

// GiftSpec returns the GIFT-64 description (the genericity demo cipher).
func GiftSpec() *Spec { return gift.Spec() }

// Scone64Spec returns the synthetic dense-linear-layer demonstration
// cipher (a GF(2) matrix diffusion layer instead of a bit permutation).
func Scone64Spec() *Spec { return scone64.Spec() }

// Countermeasure construction layer.
type (
	// Scheme selects the protection scheme.
	Scheme = core.Scheme
	// Entropy selects the λ entropy variant.
	Entropy = core.Entropy
	// Options configures Build.
	Options = core.Options
	// Design is a built gate-level core.
	Design = core.Design
	// Runner drives a design through the simulator.
	Runner = core.Runner
	// LambdaFunc supplies per-cycle λ values to a Runner.
	LambdaFunc = core.LambdaFunc
	// Branch identifies the actual or redundant computation.
	Branch = core.Branch
	// SoftwareCM is the word-level software model of Algorithm 1.
	SoftwareCM = core.SoftwareCM
)

// Protection schemes.
const (
	SchemeUnprotected = core.SchemeUnprotected
	SchemeNaiveDup    = core.SchemeNaiveDup
	SchemeACISP       = core.SchemeACISP
	SchemeThreeInOne  = core.SchemeThreeInOne
)

// Entropy variants.
const (
	EntropyPrime    = core.EntropyPrime
	EntropyPerRound = core.EntropyPerRound
	EntropyPerSbox  = core.EntropyPerSbox
)

// Branches.
const (
	BranchActual    = core.BranchActual
	BranchRedundant = core.BranchRedundant
)

// Synthesis engines.
const (
	EngineANF = synth.EngineANF
	EngineBDD = synth.EngineBDD
)

// Build constructs a gate-level design for the cipher and options.
func Build(spec *Spec, opts Options) (*Design, error) { return core.Build(spec, opts) }

// MustBuild is Build that panics on error.
func MustBuild(spec *Spec, opts Options) *Design { return core.MustBuild(spec, opts) }

// NewRunner compiles a design and returns a simulator-backed runner.
func NewRunner(d *Design) (*Runner, error) { return core.NewRunner(d) }

// LambdaConst adapts fixed per-lane λ values to a LambdaFunc (the prime
// variant's contract).
func LambdaConst(vals []uint64) LambdaFunc { return core.LambdaConst(vals) }

// Fault-injection layer.
type (
	// FaultModel enumerates stuck-at-0/1 and bit-flip.
	FaultModel = fault.Model
	// Fault is one injected fault.
	Fault = fault.Fault
	// Campaign runs a classification campaign.
	Campaign = fault.Campaign
	// CampaignResult aggregates outcomes.
	CampaignResult = fault.Result
	// CampaignRun is one classified encryption.
	CampaignRun = fault.Run
	// Net identifies a wire in a design's netlist.
	Net = netlist.Net
)

// Fault models.
const (
	StuckAt0 = fault.StuckAt0
	StuckAt1 = fault.StuckAt1
	BitFlip  = fault.BitFlip
)

// FaultAt returns a fault active during exactly one cycle.
func FaultAt(net Net, model FaultModel, cycle int) Fault { return fault.At(net, model, cycle) }

// Injector applies faults during simulation; install it with
// Runner.S.SetInjector.
type Injector = fault.Injector

// NewInjector builds an injector over the given faults.
func NewInjector(faults ...Fault) *Injector { return fault.NewInjector(faults...) }

// Attack layer.
type (
	// AttackTarget wraps a design with the attacker's run plumbing.
	AttackTarget = attack.Target
	// AttackResult is the common attack outcome.
	AttackResult = attack.Result
	// DFAConfig parameterises the differential fault attack.
	DFAConfig = attack.DFAConfig
	// SIFAConfig parameterises the statistical ineffective fault attack.
	SIFAConfig = attack.SIFAConfig
	// FTAConfig parameterises the fault template attack.
	FTAConfig = attack.FTAConfig
)

// NewAttackTarget compiles a design for attacking under the given key.
func NewAttackTarget(d *Design, key KeyState, seed uint64) (*AttackTarget, error) {
	return attack.NewTarget(d, key, seed)
}

// RunDFA mounts the last-round DFA (full key recovery on PRESENT-80).
func RunDFA(t *AttackTarget, cfg DFAConfig) AttackResult { return attack.RunDFA(t, cfg) }

// RunSIFA mounts the statistical ineffective fault attack.
func RunSIFA(t *AttackTarget, cfg SIFAConfig) attack.SIFAResult { return attack.RunSIFA(t, cfg) }

// RunFTA mounts the fault template attack on a freshly built design.
func RunFTA(d *Design, key KeyState, cfg FTAConfig, seed uint64) (attack.FTAResult, error) {
	return attack.RunFTAOnDesign(d, key, cfg, seed)
}

// RunIFA mounts Clavier's ineffective fault attack.
func RunIFA(t *AttackTarget, cfg attack.IFAConfig) attack.IFAResult { return attack.RunIFA(t, cfg) }

// RunSFA mounts the biased (statistical) fault attack.
func RunSFA(t *AttackTarget, cfg attack.SFAConfig) attack.SIFAResult { return attack.RunSFA(t, cfg) }

// Area layer.
type (
	// CellLibrary prices netlists in gate equivalents.
	CellLibrary = stdcell.Library
	// AreaReport is a GE breakdown.
	AreaReport = stdcell.Report
)

// Nangate45 returns the GE model of the open 45nm Nangate PDK used by the
// paper's tables.
func Nangate45() *CellLibrary { return stdcell.Nangate45() }

// Area prices a design against a library.
func Area(lib *CellLibrary, d *Design) AreaReport { return lib.Area(d.Mod) }

// Service layer (the sconed daemon's job engine; see cmd/sconed and
// internal/service/client for the HTTP surface).
type (
	// ServiceConfig sizes a Service's worker pool, queue and checkpoint
	// interval.
	ServiceConfig = service.Config
	// Service is the embeddable fault-campaign job engine behind sconed.
	Service = service.Service
	// JobRequest describes one job submission.
	JobRequest = service.JobRequest
	// JobStatus is a job's externally visible state.
	JobStatus = service.JobStatus
	// JobKind enumerates the job types a Service executes.
	JobKind = service.Kind
	// JobEvent is one entry of a job's progress stream.
	JobEvent = service.Event
)

// Job kinds.
const (
	JobCampaign = service.KindCampaign
	JobDFA      = service.KindDFA
	JobSIFA     = service.KindSIFA
	JobFTA      = service.KindFTA
	JobArea     = service.KindArea
	JobLint     = service.KindLint
)

// NewService starts a job engine; Close (or Drain) releases its workers.
func NewService(cfg ServiceConfig) (*Service, error) { return service.New(cfg) }

// Randomness layer.
type (
	// EntropySource yields random bits (TRNG model or deterministic
	// PRNG).
	EntropySource = rng.Source
	// TRNG is the behavioural ring-oscillator TRNG model.
	TRNG = rng.RingOscillatorTRNG
)

// NewTRNG creates the ring-oscillator TRNG model.
func NewTRNG(seed uint64) *TRNG { return rng.NewRingOscillatorTRNG(seed) }

// NewDeterministicSource creates the reproducible xoshiro256** source.
func NewDeterministicSource(seed uint64) *rng.Xoshiro { return rng.NewXoshiro(seed) }
