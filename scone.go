package scone

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/attack"
	"repro/internal/cipher/gift"
	"repro/internal/cipher/present"
	"repro/internal/cipher/scone64"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/leakage"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/prove"
	"repro/internal/rng"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/sim"
	"repro/internal/spn"
	"repro/internal/stdcell"
	"repro/internal/synth"
)

// ---------------------------------------------------------------------------
// Cipher description layer
//
// An SPN cipher is described once as a Spec; everything downstream — the
// software reference, the protected gate-level cores, the attacks — derives
// from it.
// ---------------------------------------------------------------------------

type (
	// Spec describes an SPN cipher; see PresentSpec and GiftSpec for
	// ready-made instances.
	Spec = spn.Spec
	// KeyState holds a cipher key of up to 128 bits (word 0 = bits
	// 0..63).
	KeyState = spn.KeyState
)

// PresentSpec returns the PRESENT-80 description used throughout the
// paper's evaluation.
func PresentSpec() *Spec { return present.Spec() }

// GiftSpec returns the GIFT-64 description (the genericity demo cipher).
func GiftSpec() *Spec { return gift.Spec() }

// Scone64Spec returns the synthetic dense-linear-layer demonstration
// cipher (a GF(2) matrix diffusion layer instead of a bit permutation).
func Scone64Spec() *Spec { return scone64.Spec() }

// ---------------------------------------------------------------------------
// Countermeasure construction layer
//
// Build turns a Spec plus Options into a gate-level Design protected with
// the selected duplication scheme; a Runner drives the design through the
// bit-parallel simulator.
// ---------------------------------------------------------------------------

type (
	// Scheme selects the protection scheme.
	Scheme = core.Scheme
	// Entropy selects the λ entropy variant.
	Entropy = core.Entropy
	// Options configures Build.
	Options = core.Options
	// Design is a built gate-level core.
	Design = core.Design
	// Runner drives a design through the simulator.
	Runner = core.Runner
	// LambdaFunc supplies per-cycle λ values to a Runner.
	LambdaFunc = core.LambdaFunc
	// Branch identifies the actual or redundant computation.
	Branch = core.Branch
	// SoftwareCM is the word-level software model of Algorithm 1.
	SoftwareCM = core.SoftwareCM
)

// Protection schemes.
const (
	// SchemeUnprotected builds the bare core with no duplication.
	SchemeUnprotected = core.SchemeUnprotected
	// SchemeNaiveDup duplicates the datapath and compares outputs.
	SchemeNaiveDup = core.SchemeNaiveDup
	// SchemeACISP is the ACISP 2020 randomised duplication.
	SchemeACISP = core.SchemeACISP
	// SchemeThreeInOne is the paper's merged three-in-one countermeasure.
	SchemeThreeInOne = core.SchemeThreeInOne
	// SchemeCorrect is the fault-correction baseline: λ-diverse triple
	// redundancy with a per-bit majority vote, so a single faulted branch
	// is corrected (the right ciphertext still releases) rather than
	// merely detected.
	SchemeCorrect = core.SchemeCorrect
	// SchemeMaskedDup is three-in-one over a first-order Boolean-masked
	// datapath: identical fault detection, but the power side channel
	// (including λ) is first-order masked. Leakage jobs measure the
	// difference.
	SchemeMaskedDup = core.SchemeMaskedDup
)

// SchemeInfo is one row of the scheme registry: wire vocabulary plus
// capability flags (Duplicated / UsesRandomness / Corrects / Masked).
type SchemeInfo = core.SchemeInfo

// Schemes lists the registered protection schemes in capability order.
func Schemes() []SchemeInfo { return core.Schemes() }

// ParseScheme resolves a wire token ("three-in-one", "masked", an alias, or
// "" for the default) to its Scheme.
func ParseScheme(token string) (Scheme, error) { return core.ParseScheme(token) }

// SchemeWire returns the canonical wire token of a scheme.
func SchemeWire(s Scheme) string { return core.SchemeWire(s) }

// Entropy variants.
const (
	// EntropyPrime draws one λ bit per encryption (the λ′ variant).
	EntropyPrime = core.EntropyPrime
	// EntropyPerRound draws a fresh λ bit every round.
	EntropyPerRound = core.EntropyPerRound
	// EntropyPerSbox draws a fresh λ bit per S-box per round.
	EntropyPerSbox = core.EntropyPerSbox
)

// Branches.
const (
	// BranchActual is the computation whose output is released.
	BranchActual = core.BranchActual
	// BranchRedundant is the duplicated check computation.
	BranchRedundant = core.BranchRedundant
	// BranchRedundant2 is the second redundant computation of the
	// correcting (majority-vote) scheme.
	BranchRedundant2 = core.BranchRedundant2
)

// Synthesis engines.
const (
	// EngineANF synthesises S-boxes from their algebraic normal form.
	EngineANF = synth.EngineANF
	// EngineBDD synthesises S-boxes from reduced ordered BDDs.
	EngineBDD = synth.EngineBDD
)

// Build constructs a gate-level design for the cipher and options.
func Build(spec *Spec, opts Options) (*Design, error) { return core.Build(spec, opts) }

// MustBuild is Build that panics on error.
func MustBuild(spec *Spec, opts Options) *Design { return core.MustBuild(spec, opts) }

// NewRunner compiles a design and returns a simulator-backed runner.
func NewRunner(d *Design) (*Runner, error) { return core.NewRunner(d) }

// LambdaConst adapts fixed per-lane λ values to a LambdaFunc (the prime
// variant's contract).
func LambdaConst(vals []uint64) LambdaFunc { return core.LambdaConst(vals) }

// ---------------------------------------------------------------------------
// Simulation layer
//
// The simulator is mostly an implementation detail behind Runner and
// Campaign; the facade exposes its logical batch size and the engine
// configuration selecting how wide and how parallel that batch executes.
// ---------------------------------------------------------------------------

// BatchLanes is the campaign's logical batch size: batch randomness,
// checkpoints, lease ranges and stored results are all addressed in
// BatchLanes-run units, regardless of the engine configuration executing
// them (an EngineConfig with LaneWords W evaluates W such batches per
// simulator pass).
const BatchLanes = sim.Lanes

// EngineConfig is the campaign engine's execution configuration: simulator
// word width (LaneWords — one pass evaluates LaneWords×64 lanes), worker
// parallelism, and dispatch granularity. It is pure execution policy: every
// configuration computes bit-identical results and leaves content-addressed
// stored batches valid. Set it on Campaign.Engine (or through
// BoundCampaign.WithEngine).
type EngineConfig = fault.EngineConfig

// DefaultEngineConfig returns the explicit form of the zero-value engine
// configuration: width 1, GOMAXPROCS parallelism, one lane group per
// dispatch.
func DefaultEngineConfig() EngineConfig { return fault.DefaultEngineConfig() }

// ---------------------------------------------------------------------------
// Fault-injection layer
//
// A Campaign classifies many faulted encryptions (ineffective / detected /
// effective) under a deterministic seed; an Injector applies individual
// faults during bespoke simulations.
// ---------------------------------------------------------------------------

type (
	// Model enumerates the fault models: stuck-at-0/1 and bit-flip.
	Model = fault.Model
	// Fault is one injected fault.
	Fault = fault.Fault
	// Campaign runs a classification campaign.
	Campaign = fault.Campaign
	// CampaignResult aggregates outcomes.
	CampaignResult = fault.Result
	// Run is one classified encryption of a campaign.
	Run = fault.Run
	// Net identifies a wire in a design's netlist.
	Net = netlist.Net
	// Injector applies faults during simulation; install it with
	// Runner.S.SetInjector.
	Injector = fault.Injector
	// PersistentFault corrupts one S-box table entry for a whole campaign
	// (the persistent-fault model, PFA): set Campaign.Persistent to apply.
	PersistentFault = fault.PersistentFault
)

// FaultModel enumerates stuck-at-0/1 and bit-flip.
//
// Deprecated: use Model.
type FaultModel = fault.Model

// CampaignRun is one classified encryption.
//
// Deprecated: use Run.
type CampaignRun = fault.Run

// Fault models.
const (
	// StuckAt0 forces the faulted net to 0.
	StuckAt0 = fault.StuckAt0
	// StuckAt1 forces the faulted net to 1.
	StuckAt1 = fault.StuckAt1
	// BitFlip inverts the faulted net.
	BitFlip = fault.BitFlip
)

// FaultAt returns a fault active during exactly one cycle.
func FaultAt(net Net, model Model, cycle int) Fault { return fault.At(net, model, cycle) }

// NewInjector builds an injector over the given faults.
func NewInjector(faults ...Fault) *Injector { return fault.NewInjector(faults...) }

// BoundCampaign is a Campaign tied to the context it was created with
// (the http.NewRequestWithContext pattern): Run honours that context's
// cancellation between batches, so a drained or timed-out campaign
// returns the counts of a contiguous batch prefix together with the
// context's error.
type BoundCampaign struct {
	// Campaign is the underlying campaign; its fields stay settable
	// (Engine, extra Faults) before the first Run.
	Campaign
	ctx context.Context
}

// NewCampaign constructs a fault-classification campaign over a built
// design, bound to ctx. The campaign derives all randomness from seed, so
// equal arguments give bit-identical results regardless of worker count
// or interruption points.
func NewCampaign(ctx context.Context, d *Design, key KeyState, runs int, seed uint64, faults ...Fault) (*BoundCampaign, error) {
	if ctx == nil {
		return nil, errors.New("scone: nil context in NewCampaign")
	}
	if d == nil {
		return nil, errors.New("scone: nil design in NewCampaign")
	}
	if runs <= 0 {
		return nil, errors.New("scone: campaign needs a positive run count")
	}
	return &BoundCampaign{
		Campaign: Campaign{Design: d, Key: key, Faults: faults, Runs: runs, Seed: seed},
		ctx:      ctx,
	}, nil
}

// WithEngine installs a validated execution configuration on the campaign
// and returns it, so construction chains:
//
//	camp, err := scone.NewCampaign(ctx, d, key, runs, seed, faults...)
//	...
//	camp, err = camp.WithEngine(scone.EngineConfig{LaneWords: 4})
//
// The configuration never changes results — only how fast the machine
// computes them.
func (c *BoundCampaign) WithEngine(cfg EngineConfig) (*BoundCampaign, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c.Engine = cfg
	return c, nil
}

// Run executes the campaign under the bound context. observe, when
// non-nil, sees every classified run in deterministic seed order.
func (c *BoundCampaign) Run(observe func(Run)) (CampaignResult, error) {
	return c.ExecuteContext(c.ctx, observe)
}

// ---------------------------------------------------------------------------
// Multi-fault planning layer
//
// A plan enumerates the adversary placements of a multi-fault sweep over a
// built design: every k-tuple of declared fault points (lexicographic, so
// sweeps checkpoint and resume by tuple index, with adaptive pruning of
// tuples containing known-inert sites), or every persistent S-box table
// corruption. See DESIGN.md §14.
// ---------------------------------------------------------------------------

type (
	// FaultPlan is a generated k-fault campaign plan: the candidate sites
	// and the tuple enumeration over them.
	FaultPlan = plan.Plan
	// PlanRequest configures k-fault plan generation (arity, S-box and
	// cone filters, truncation).
	PlanRequest = plan.Request
	// PlanSite is one candidate injection location with its parsed
	// (branch, S-box, bit) provenance.
	PlanSite = plan.Site
	// SboxCorruption is one persistent-fault plan entry: an S-box table
	// entry and the XOR mask applied to it.
	SboxCorruption = plan.Corruption
)

// Plan generates the k-fault plan for a built design.
func Plan(d *Design, req PlanRequest) (*FaultPlan, error) { return plan.New(d, req) }

// PlanSites lists a built design's declared fault points in the stable
// order plans, prover reports and lint findings share.
func PlanSites(d *Design) []PlanSite { return plan.Sites(d) }

// PersistentCorruptions enumerates the persistent-fault (PFA) plan for an
// S-box of the given bit width: every (entry, non-zero XOR mask) pair,
// optionally restricted to the listed entries and truncated after max.
func PersistentCorruptions(sboxBits int, entries []int, max int) ([]SboxCorruption, bool, error) {
	return plan.PersistentPlan(sboxBits, entries, max)
}

// ---------------------------------------------------------------------------
// Attack layer
//
// The attacks of Section IV-B: classic and identical-fault DFA, SIFA (and
// the IFA / biased-SFA models it generalises), and the fault template
// attack.
// ---------------------------------------------------------------------------

type (
	// AttackTarget wraps a design with the attacker's run plumbing.
	AttackTarget = attack.Target
	// AttackResult is the common attack outcome.
	AttackResult = attack.Result
	// DFAConfig parameterises the differential fault attack.
	DFAConfig = attack.DFAConfig
	// SIFAConfig parameterises the statistical ineffective fault attack.
	SIFAConfig = attack.SIFAConfig
	// SIFAResult is the SIFA outcome with its bias statistics.
	SIFAResult = attack.SIFAResult
	// IFAConfig parameterises Clavier's ineffective fault attack.
	IFAConfig = attack.IFAConfig
	// IFAResult is the IFA outcome.
	IFAResult = attack.IFAResult
	// SFAConfig parameterises the biased (statistical) fault attack.
	SFAConfig = attack.SFAConfig
	// FTAConfig parameterises the fault template attack.
	FTAConfig = attack.FTAConfig
	// FTAResult is the FTA outcome with its template statistics.
	FTAResult = attack.FTAResult
)

// NewAttackTarget compiles a design for attacking under the given key.
func NewAttackTarget(d *Design, key KeyState, seed uint64) (*AttackTarget, error) {
	return attack.NewTarget(d, key, seed)
}

// RunDFA mounts the last-round DFA (full key recovery on PRESENT-80).
func RunDFA(t *AttackTarget, cfg DFAConfig) AttackResult { return attack.RunDFA(t, cfg) }

// RunSIFA mounts the statistical ineffective fault attack.
func RunSIFA(t *AttackTarget, cfg SIFAConfig) SIFAResult { return attack.RunSIFA(t, cfg) }

// RunFTA mounts the fault template attack on a freshly built design.
func RunFTA(d *Design, key KeyState, cfg FTAConfig, seed uint64) (FTAResult, error) {
	return attack.RunFTAOnDesign(d, key, cfg, seed)
}

// RunIFA mounts Clavier's ineffective fault attack.
func RunIFA(t *AttackTarget, cfg IFAConfig) IFAResult { return attack.RunIFA(t, cfg) }

// RunSFA mounts the biased (statistical) fault attack.
func RunSFA(t *AttackTarget, cfg SFAConfig) SIFAResult { return attack.RunSFA(t, cfg) }

// ---------------------------------------------------------------------------
// Area layer
//
// Gate-equivalent pricing against the Nangate-45-like standard-cell
// library of the paper's tables.
// ---------------------------------------------------------------------------

type (
	// CellLibrary prices netlists in gate equivalents.
	CellLibrary = stdcell.Library
	// AreaReport is a GE breakdown.
	AreaReport = stdcell.Report
)

// Nangate45 returns the GE model of the open 45nm Nangate PDK used by the
// paper's tables.
func Nangate45() *CellLibrary { return stdcell.Nangate45() }

// Area prices a design against a library.
func Area(lib *CellLibrary, d *Design) AreaReport { return lib.Area(d.Mod) }

// ---------------------------------------------------------------------------
// Formal verification layer
//
// The BDD-based independence prover (internal/prove): where sconelint
// proves the countermeasure's structural obligations and fault campaigns
// sample its behavioural ones, Prove decides the three SIFA-independence
// obligations exactly — by model counting over the randomness variables —
// at every tagged fault point of a design. See DESIGN.md §13.
// ---------------------------------------------------------------------------

type (
	// ProveOptions configures a prover run (node budget, fault models,
	// fault locations).
	ProveOptions = prove.Options
	// ProveResult is a full prover run over one module: per-pair verdicts
	// plus proved/dependent/unknown aggregates.
	ProveResult = prove.Result
	// ProveLocationResult is one (fault location, model) pair's outcome.
	ProveLocationResult = prove.LocationResult
	// ProveVerdict is the outcome of one independence check.
	ProveVerdict = prove.Verdict
	// ProveWitness is a concrete key-dependence certificate: an input
	// assignment under which flipping one key bit changes a count.
	ProveWitness = prove.Witness
)

// Prove verdicts.
const (
	// ProvedIndependent: proved key-independent over all inputs.
	ProvedIndependent = prove.VerdictIndependent
	// ProveUnknown: the BDD node budget was exceeded before a proof.
	ProveUnknown = prove.VerdictUnknown
	// ProveDependent: key-dependent, with a concrete witness.
	ProveDependent = prove.VerdictDependent
)

// Prove runs the independence prover over every tagged fault point of a
// built design. A nil-field ProveOptions proves all three fault models
// under the default node budget.
func Prove(d *Design, opts ProveOptions) (*ProveResult, error) { return prove.Run(d.Mod, opts) }

// ---------------------------------------------------------------------------
// Service layer
//
// The sconed daemon's embeddable job engine; see cmd/sconed and
// internal/service/client for the HTTP surface.
// ---------------------------------------------------------------------------

type (
	// ServiceConfig sizes a Service's worker pool, queue and checkpoint
	// interval; its Obs field attaches the service to a shared Registry.
	ServiceConfig = service.Config
	// Service is the embeddable fault-campaign job engine behind sconed.
	Service = service.Service
	// JobRequest describes one job submission.
	JobRequest = service.JobRequest
	// JobStatus is a job's externally visible state.
	JobStatus = service.JobStatus
	// JobKind enumerates the job types a Service executes.
	JobKind = service.Kind
	// JobState enumerates a job's lifecycle states.
	JobState = service.State
	// JobEvent is one entry of a job's progress stream.
	JobEvent = service.Event
	// DesignSpec names the design a job operates on in the wire
	// vocabulary (cipher/scheme/entropy/engine or an inline netlist).
	DesignSpec = service.DesignSpec
	// U64 is the wire form of a 64-bit word (hex-string JSON encoding);
	// job specs carry seeds and keys as U64.
	U64 = service.U64
	// MultiFaultSpec parameterises a multifault job: a planned sweep over
	// many adversary placements, each executed as its own
	// seed-deterministic campaign.
	MultiFaultSpec = service.MultiFaultSpec
	// MultiFaultResult is a finished multifault sweep: per-placement
	// tallies plus escape/correction aggregates.
	MultiFaultResult = service.MultiFaultResult
	// TupleResult is one multifault placement's outcome.
	TupleResult = service.TupleResult
	// LeakageSpec parameterises a leakage job: a fixed-vs-random TVLA
	// evaluation of the design, optionally under injected faults with
	// SIFA-style ineffective-run filtering.
	LeakageSpec = service.LeakageSpec
	// LeakageResult is a finished TVLA evaluation: kept-trace counts,
	// per-cycle Welch t-statistics and the |t| > 4.5 verdict.
	LeakageResult = service.LeakageResult
)

// ---------------------------------------------------------------------------
// Result store
//
// A Service with a StateDir keeps a content-addressed, crash-safe store of
// completed campaign batches and run provenance (internal/store). Campaign
// executions consult it and replay cached batches instead of re-simulating
// them — bit-identically, by the determinism contract — and the read paths
// below answer queries with zero simulation. See DESIGN.md §12.
// ---------------------------------------------------------------------------

type (
	// ResultsView is the zero-simulation answer to a stored-results query
	// (Service.Results, GET /v1/results): how much of the addressed
	// campaign is cached, and the complete result when all of it is.
	ResultsView = service.ResultsView
	// CampaignRunRecord is the durable provenance of one campaign
	// submission (Service.StoredRuns, GET /v1/runs): request, content
	// digests, replay/simulation split, timestamps and final counts.
	CampaignRunRecord = service.RunRecord
)

// Job kinds.
const (
	// JobCampaign runs a fault-classification campaign.
	JobCampaign = service.KindCampaign
	// JobDFA runs the differential fault attack.
	JobDFA = service.KindDFA
	// JobSIFA runs the statistical ineffective fault attack.
	JobSIFA = service.KindSIFA
	// JobFTA runs the fault template attack.
	JobFTA = service.KindFTA
	// JobArea prices the design in gate equivalents.
	JobArea = service.KindArea
	// JobLint runs the static countermeasure audit.
	JobLint = service.KindLint
	// JobProve runs the formal independence prover.
	JobProve = service.KindProve
	// JobMultiFault runs a planned multi-fault or persistent-fault sweep.
	JobMultiFault = service.KindMultiFault
	// JobLeakage runs a fixed-vs-random TVLA leakage evaluation.
	JobLeakage = service.KindLeakage
)

// Job states.
const (
	// JobQueued is a job waiting for a worker.
	JobQueued = service.StateQueued
	// JobRunning is a job being executed.
	JobRunning = service.StateRunning
	// JobDone is a successfully finished job.
	JobDone = service.StateDone
	// JobFailed is a job that ended with an error.
	JobFailed = service.StateFailed
	// JobCanceled is a job stopped by the user.
	JobCanceled = service.StateCanceled
)

// NewService starts a job engine; Close (or Drain) releases its workers.
func NewService(cfg ServiceConfig) (*Service, error) { return service.New(cfg) }

// MultiFault executes a multifault sweep in-process: an ephemeral
// single-worker Service runs the request to completion and returns the
// result. Long-running sweeps that need durable checkpoints, resume or the
// distributed lease fabric should instead submit a JobMultiFault request to
// a Service the caller configures and keeps.
func MultiFault(ctx context.Context, design DesignSpec, spec MultiFaultSpec) (*MultiFaultResult, error) {
	if ctx == nil {
		return nil, errors.New("scone: nil context in MultiFault")
	}
	svc, err := service.New(service.Config{Workers: 1})
	if err != nil {
		return nil, err
	}
	defer svc.Close()
	st, err := svc.Submit(service.JobRequest{Kind: service.KindMultiFault, Design: design, MultiFault: &spec})
	if err != nil {
		return nil, err
	}
	ch, off, err := svc.Watch(st.ID)
	if err != nil {
		return nil, err
	}
	defer off()
	for {
		select {
		case <-ctx.Done():
			_, _ = svc.Cancel(st.ID)
			return nil, ctx.Err()
		case _, ok := <-ch:
			if ok {
				continue // progress event; only the stream close matters here
			}
			final, err := svc.Get(st.ID)
			if err != nil {
				return nil, err
			}
			if final.State != service.StateDone || final.Result == nil || final.Result.MultiFault == nil {
				return nil, fmt.Errorf("scone: multifault sweep ended %s: %s", final.State, final.Error)
			}
			return final.Result.MultiFault, nil
		}
	}
}

// Leakage executes a TVLA leakage evaluation in-process: an ephemeral
// single-worker Service runs the request to completion and returns the
// result. Long evaluations that need durable checkpoints and resume
// should instead submit a JobLeakage request to a Service the caller
// configures and keeps.
func Leakage(ctx context.Context, design DesignSpec, spec LeakageSpec) (*LeakageResult, error) {
	if ctx == nil {
		return nil, errors.New("scone: nil context in Leakage")
	}
	svc, err := service.New(service.Config{Workers: 1})
	if err != nil {
		return nil, err
	}
	defer svc.Close()
	st, err := svc.Submit(service.JobRequest{Kind: service.KindLeakage, Design: design, Leakage: &spec})
	if err != nil {
		return nil, err
	}
	ch, off, err := svc.Watch(st.ID)
	if err != nil {
		return nil, err
	}
	defer off()
	for {
		select {
		case <-ctx.Done():
			_, _ = svc.Cancel(st.ID)
			return nil, ctx.Err()
		case _, ok := <-ch:
			if ok {
				continue // progress event; only the stream close matters here
			}
			final, err := svc.Get(st.ID)
			if err != nil {
				return nil, err
			}
			if final.State != service.StateDone || final.Result == nil || final.Result.Leakage == nil {
				return nil, fmt.Errorf("scone: leakage evaluation ended %s: %s", final.State, final.Error)
			}
			return final.Result.Leakage, nil
		}
	}
}

// ---------------------------------------------------------------------------
// Distributed execution layer
//
// A Service with DistConfig.Enabled becomes a coordinator: campaign jobs
// are split into batch-range leases that CampaignWorker processes pull over
// the /v1 HTTP API, execute, and report back. Campaign batches derive all
// randomness from (seed, batch), so a distributed run — including lease
// expiry and reassignment after a worker dies — merges to a result
// bit-identical to a single-node execution. See DESIGN.md §11.
// ---------------------------------------------------------------------------

type (
	// DistConfig enables and tunes the distributed campaign fabric on a
	// coordinator Service (lease sizing, TTL, attempt budget).
	DistConfig = service.DistConfig
	// WorkerState is a registered worker's lifecycle position.
	WorkerState = service.WorkerState
	// LeaseState is a lease's lifecycle position.
	LeaseState = service.LeaseState
	// WorkerInfo is the wire view of a registered worker (GET /v1/workers).
	WorkerInfo = service.WorkerInfo
	// LeaseInfo is the wire view of a live lease (GET /v1/leases).
	LeaseInfo = service.LeaseInfo
	// LeaseGrant is one granted batch range: the campaign request plus
	// the [FirstBatch, LastBatch) window the worker executes.
	LeaseGrant = service.LeaseGrant
	// CampaignWorker is a lease-pulling campaign executor; sconed -worker
	// is a thin shell around it.
	CampaignWorker = client.Worker
	// CampaignWorkerConfig points a CampaignWorker at its coordinator and
	// tunes chunking and concurrency.
	CampaignWorkerConfig = client.WorkerConfig
)

// Worker states.
const (
	// WorkerActive is a worker with a fresh heartbeat.
	WorkerActive = service.WorkerActive
	// WorkerLost is a worker that went silent; its leases are reassigned.
	WorkerLost = service.WorkerLost
	// WorkerLeft is a worker that deregistered cleanly.
	WorkerLeft = service.WorkerLeft
)

// Lease states.
const (
	// LeasePending is a batch range waiting for a worker.
	LeasePending = service.LeasePending
	// LeaseActive is a granted range being executed under a TTL.
	LeaseActive = service.LeaseActive
	// LeaseDone is a completed range merged into the job result.
	LeaseDone = service.LeaseDone
)

// NewCampaignWorker creates a worker that joins the coordinator named in
// cfg and executes leases until its Run context is cancelled.
func NewCampaignWorker(cfg CampaignWorkerConfig) *CampaignWorker { return client.NewWorker(cfg) }

// ---------------------------------------------------------------------------
// Observability layer
//
// A dependency-free metrics registry (internal/obs): atomic counters and
// gauges, bucketed histograms, span timing, and Prometheus text
// exposition. Instruments are nil-safe, so an unwired component costs
// nothing — see DESIGN.md §10.
// ---------------------------------------------------------------------------

type (
	// Registry holds registered instruments and renders them; the zero
	// point of the observability layer.
	Registry = obs.Registry
	// Counter is a monotonically increasing metric.
	Counter = obs.Counter
	// Gauge is a settable point-in-time metric.
	Gauge = obs.Gauge
	// Histogram is a bucketed distribution metric.
	Histogram = obs.Histogram
	// Span times one operation into a Histogram.
	Span = obs.Span
)

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// EnableObservability registers the simulator, fault-engine, prover,
// planner and leakage-evaluator instrument families on reg, so campaign
// internals (cache hits, evals, batch latency, reorder depth), proof
// progress (locations proved, peak BDD nodes, per-location latency), plan
// sizing (tuples enumerated, tuples pruned) and TVLA trace collection
// (batches, kept/discarded traces) surface in reg's Prometheus
// exposition. Pass nil to detach them again — the hot paths then cost
// nothing. Service instances attach through ServiceConfig.Obs instead.
func EnableObservability(reg *Registry) {
	sim.EnableObservability(reg)
	fault.EnableObservability(reg)
	prove.EnableObservability(reg)
	plan.EnableObservability(reg)
	leakage.EnableObservability(reg)
}

// ---------------------------------------------------------------------------
// Randomness layer
//
// The entropy sources feeding λ: a behavioural TRNG model for realism, a
// deterministic PRNG for reproducible experiments.
// ---------------------------------------------------------------------------

type (
	// EntropySource yields random bits (TRNG model or deterministic
	// PRNG).
	EntropySource = rng.Source
	// TRNG is the behavioural ring-oscillator TRNG model.
	TRNG = rng.RingOscillatorTRNG
)

// NewTRNG creates the ring-oscillator TRNG model.
func NewTRNG(seed uint64) *TRNG { return rng.NewRingOscillatorTRNG(seed) }

// NewDeterministicSource creates the reproducible xoshiro256** source.
func NewDeterministicSource(seed uint64) *rng.Xoshiro { return rng.NewXoshiro(seed) }
