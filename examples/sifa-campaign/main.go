// sifa-campaign: the end-to-end SIFA story of the paper's Figure 4, as a
// library user would run it — bias histograms against naive duplication
// versus the three-in-one countermeasure, followed by the actual key-
// recovery attack against both.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/experiments"
)

func main() {
	runs := flag.Int("runs", 20000, "campaign size (the paper uses 80000)")
	flag.Parse()

	// Phase 1: the bias campaign of Figure 4 — inject a stuck-at-0 at
	// the second MSB of S-box 13 in the last round, 'runs' times per
	// design, and histogram the S-box input over the ineffective runs.
	cfg := experiments.DefaultConfig()
	cfg.Runs = *runs
	fig4, err := experiments.RunFig4(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig4)

	// Phase 2: turn the bias into key recovery. The SIFA attacker
	// partially decrypts the released (= ineffective) ciphertexts under
	// every last-round subkey guess and scores each guess with a
	// matched filter for the fault model.
	key := scone.KeyState{0x0123456789ABCDEF, 0x8421}
	for _, scheme := range []scone.Scheme{scone.SchemeNaiveDup, scone.SchemeThreeInOne} {
		design := scone.MustBuild(scone.PresentSpec(), scone.Options{
			Scheme: scheme, Entropy: scone.EntropyPrime, Engine: scone.EngineANF,
		})
		target, err := scone.NewAttackTarget(design, key, 7)
		if err != nil {
			log.Fatal(err)
		}
		res := scone.RunSIFA(target, scone.SIFAConfig{
			SboxIndex: 13, FaultBit: 2, Injections: 4096, Seed: 0x51FA,
		})
		fmt.Printf("SIFA key recovery vs %-24s %s\n", scheme.String()+":", res.Result)
	}
}
