// gift-adaptation: the paper claims the countermeasure "is easily
// adaptable for any symmetric key primitive". This example protects a
// second cipher — GIFT-64, whose round structure differs from PRESENT in
// every knob (post-permutation key addition, round constants, no final
// whitening, 128-bit key) — with the exact same builder call, and shows
// the identical-fault DFA experiment carrying over.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	design := scone.MustBuild(scone.GiftSpec(), scone.Options{
		Scheme:  scone.SchemeThreeInOne,
		Entropy: scone.EntropyPrime,
		Engine:  scone.EngineANF,
	})
	fmt.Printf("built %s: %d cells, %d DFFs\n",
		design.Mod.Name, len(design.Mod.Cells), design.Mod.NumDFFs())

	runner, err := scone.NewRunner(design)
	if err != nil {
		log.Fatal(err)
	}
	trng := scone.NewTRNG(64)
	key := scone.KeyState{0x0011223344556677, 0x8899AABBCCDDEEFF}

	// Functional check against the GIFT-64 software reference.
	pt := uint64(0x123456789ABCDEF0)
	ct, fault := runner.EncryptOne(pt, key, trng.Bits(64),
		scone.LambdaConst([]uint64{trng.Bits(1)}))
	ref := scone.GiftSpec().Encrypt(pt, key)
	fmt.Printf("pt=%016X -> ct=%016X (reference %016X, fault=%v)\n", pt, ct, ref, fault)
	if ct != ref {
		log.Fatal("gate-level GIFT-64 disagrees with the software reference")
	}

	// The FDTC 2016 identical-fault experiment transfers unchanged:
	// inject the same stuck-at-0 into both computations at S-box 5.
	runner.S.SetInjector(scone.NewInjector(
		scone.FaultAt(design.SboxInputNet(scone.BranchActual, 5, 1), scone.StuckAt0, design.LastRoundCycle()),
		scone.FaultAt(design.SboxInputNet(scone.BranchRedundant, 5, 1), scone.StuckAt0, design.LastRoundCycle()),
	))
	detected := 0
	const runs = 64
	for i := 0; i < runs; i++ {
		_, sensed := runner.EncryptOne(trng.Bits(64), key, trng.Bits(64),
			scone.LambdaConst([]uint64{trng.Bits(1)}))
		if sensed {
			detected++
		}
	}
	fmt.Printf("identical stuck-at-0 in both computations: %d/%d detected — the complementary encodings catch every one\n",
		detected, runs)
}
