// Quickstart: protect PRESENT-80 with the three-in-one countermeasure,
// encrypt a block on the gate-level core, then inject a last-round fault
// and watch the comparator catch it.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. Build the protected gate-level core: PRESENT-80 under the
	//    paper's three-in-one scheme (prime entropy variant: one fresh
	//    λ bit per encryption).
	design := scone.MustBuild(scone.PresentSpec(), scone.Options{
		Scheme:  scone.SchemeThreeInOne,
		Entropy: scone.EntropyPrime,
		Engine:  scone.EngineANF,
	})
	fmt.Printf("built %s: %d cells, %d DFFs\n",
		design.Mod.Name, len(design.Mod.Cells), design.Mod.NumDFFs())

	runner, err := scone.NewRunner(design)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Encrypt one block. The device draws λ and the recovery garbage
	//    from its TRNG; we model that with the ring-oscillator TRNG.
	trng := scone.NewTRNG(2021)
	key := scone.KeyState{0x0123456789ABCDEF, 0x8421}
	pt := uint64(0xCAFEBABE12345678)
	lambda := trng.Bits(1)
	garbage := trng.Bits(64)

	ct, fault := runner.EncryptOne(pt, key, garbage, scone.LambdaConst([]uint64{lambda}))
	fmt.Printf("pt=%016X  ->  ct=%016X  (fault sensed: %v, λ=%d)\n", pt, ct, fault, lambda)

	// The gate-level result matches the plain software reference: the
	// encoding is an implementation detail, not a cipher change.
	if ref := scone.PresentSpec().Encrypt(pt, key); ct != ref {
		log.Fatalf("gate-level ciphertext %016X != reference %016X", ct, ref)
	}
	fmt.Println("matches the PRESENT-80 software reference")

	// 3. Now inject a stuck-at-0 fault at the input of S-box 13 during
	//    the last round of the actual computation and encrypt again.
	net := design.SboxInputNet(scone.BranchActual, 13, 2)
	runner.S.SetInjector(scone.NewInjector(
		scone.FaultAt(net, scone.StuckAt0, design.LastRoundCycle())))

	detections := 0
	for i := 0; i < 16; i++ {
		_, sensed := runner.EncryptOne(uint64(i)*0x9E3779B97F4A7C15, key,
			trng.Bits(64), scone.LambdaConst([]uint64{trng.Bits(1)}))
		if sensed {
			detections++
		}
	}
	fmt.Printf("under a stuck-at-0 fault: %d/16 runs detected (the rest were ineffective — the fault hit a wire already at 0)\n", detections)
	fmt.Println("no faulty ciphertext was ever released")
}
