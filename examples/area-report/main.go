// area-report: regenerate the paper's area tables (Tables II and III) and
// the entropy-variant ablation with the built-in synthesis flow and the
// Nangate-45 gate-equivalent library.
package main

import (
	"fmt"

	"repro/internal/experiments"
	"repro/internal/synth"
)

func main() {
	fmt.Println(experiments.RunTableII(synth.EngineANF))
	fmt.Println(experiments.RunTableIII())
	fmt.Println(experiments.RunEntropyAblation())
	fmt.Println(experiments.RunEngineAblation())
}
