// fta-probe: the fault template attack of Eurocrypt 2020 against one AND
// gate, shown at gate level. The probe flips ONE INPUT LINE of an AND
// gate inside last-round S-box 7 and watches whether the device's
// behaviour changes — the observable the FTA threat model grants.
//
// Against the unprotected core and naive duplication the observable
// equals the other AND input, bit by bit. Against the ACISP separate-
// S-box layout it leaks through an asymmetric rate (the probed circuit is
// only live when λ selects it). Against the merged-S-box three-in-one
// design the observable is λ-randomised and collapses to a coin flip.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	key := scone.KeyState{0xFEDCBA9876543210, 0x1357}

	type row struct {
		label    string
		scheme   scone.Scheme
		separate bool
		repeats  int
	}
	rows := []row{
		{"unprotected", scone.SchemeUnprotected, false, 64},
		{"naive duplication", scone.SchemeNaiveDup, false, 64},
		{"ACISP layout (separate S-boxes)", scone.SchemeACISP, true, 128},
		{"three-in-one (merged S-boxes)", scone.SchemeThreeInOne, false, 64},
	}

	fmt.Println("FTA probe: flip one input line of an AND gate in S-box 7, last round")
	fmt.Println()
	for _, r := range rows {
		design := scone.MustBuild(scone.PresentSpec(), scone.Options{
			Scheme: r.scheme, Entropy: scone.EntropyPrime,
			Engine: scone.EngineANF, SeparateSbox: r.separate,
		})
		res, err := scone.RunFTA(design, key, scone.FTAConfig{
			SboxIndex: 7, Repeats: r.repeats, ProfilePTs: 8, AttackPTs: 8, Seed: 0xF7A,
		}, 0xDEC0DE)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "LEAKS — state bits recovered"
		if !res.Succeeded {
			verdict = "protected — observable is a coin flip"
		}
		fmt.Printf("%-34s accuracy %.2f, min separation %.2f  => %s\n",
			r.label+":", res.Accuracy, minOf(res.Separation), verdict)
	}
}

func minOf(xs []float64) float64 {
	m := 1.0
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}
