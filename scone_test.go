package scone

import "testing"

// End-to-end test of the public facade: the README quickstart, verbatim.
func TestFacadeQuickstart(t *testing.T) {
	design := MustBuild(PresentSpec(), Options{
		Scheme:  SchemeThreeInOne,
		Entropy: EntropyPrime,
		Engine:  EngineANF,
	})
	runner, err := NewRunner(design)
	if err != nil {
		t.Fatal(err)
	}
	trng := NewTRNG(2021)
	key := KeyState{0x0123456789ABCDEF, 0x8421}
	pt := uint64(0xCAFEBABE12345678)
	ct, fault := runner.EncryptOne(pt, key, trng.Bits(64),
		LambdaConst([]uint64{trng.Bits(1)}))
	if fault {
		t.Fatal("spurious fault")
	}
	if ref := PresentSpec().Encrypt(pt, key); ct != ref {
		t.Fatalf("ct %016X != reference %016X", ct, ref)
	}
}

func TestFacadeFaultDetection(t *testing.T) {
	design := MustBuild(PresentSpec(), Options{
		Scheme: SchemeThreeInOne, Entropy: EntropyPrime, Engine: EngineANF,
	})
	runner, err := NewRunner(design)
	if err != nil {
		t.Fatal(err)
	}
	runner.S.SetInjector(NewInjector(FaultAt(
		design.SboxInputNet(BranchActual, 13, 2), StuckAt0, design.LastRoundCycle())))
	trng := NewTRNG(7)
	key := KeyState{1, 2}
	escapes := 0
	for i := 0; i < 32; i++ {
		pt := trng.Bits(64)
		ct, sensed := runner.EncryptOne(pt, key, trng.Bits(64),
			LambdaConst([]uint64{trng.Bits(1)}))
		if !sensed && ct != PresentSpec().Encrypt(pt, key) {
			escapes++
		}
	}
	if escapes != 0 {
		t.Fatalf("%d faulty ciphertexts escaped", escapes)
	}
}

func TestFacadeArea(t *testing.T) {
	d := MustBuild(PresentSpec(), Options{
		Scheme: SchemeNaiveDup, Engine: EngineANF, Optimize: true,
	})
	rep := Area(Nangate45(), d)
	if rep.Total() <= 0 || rep.Sequential <= 0 {
		t.Fatalf("implausible area report: %+v", rep)
	}
}

func TestFacadeSpecs(t *testing.T) {
	for _, spec := range []*Spec{PresentSpec(), GiftSpec(), Scone64Spec()} {
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
		key := KeyState{3, 1}
		if spec.Decrypt(spec.Encrypt(42, key), key) != 42 {
			t.Errorf("%s: decrypt does not invert encrypt", spec.Name)
		}
	}
}

func TestFacadeService(t *testing.T) {
	svc, err := NewService(ServiceConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	st, err := svc.Submit(JobRequest{Kind: JobArea})
	if err != nil {
		t.Fatal(err)
	}
	for !st.State.Terminal() {
		if st, err = svc.Get(st.ID); err != nil {
			t.Fatal(err)
		}
	}
	if st.Result == nil || st.Result.Area == nil || st.Result.Area.Total <= 0 {
		t.Fatalf("area job returned %+v", st)
	}
}
